"""Analyzer <-> runtime cross-validation.

The reachability interpreter over-approximates every simulator: hazards
and speculation only suppress firings, so a slot the analyzer proves
unreachable must never retire at runtime.  These helpers check exactly
that, turning every fuzz run and workload execution into a soundness
test of the static analyzer (and vice versa: a retirement from a
"proved dead" slot is a scheduler or interpreter bug either way).
"""

from __future__ import annotations

from repro.analyze.abstract import TagSets, explore
from repro.asm.program import Program
from repro.params import ArchParams, DEFAULT_PARAMS


def stream_tag_sets(streams: dict[int, list[tuple[int, int]]],
                    num_input_queues: int) -> TagSets:
    """Possible-tag sets matching a verify-harness stream plan.

    The harness feeds each input queue exactly its stream and nothing
    else, so a queue's possible tags are the tags in its stream — empty
    for queues with no stream at all.
    """
    return {
        queue: frozenset(tag for _, tag in streams.get(queue, []))
        for queue in range(num_input_queues)
    }


def reachable_slots(
    program: Program,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
) -> frozenset[int]:
    """Slots whose triggers the analyzer considers satisfiable."""
    reach = explore(program.instructions, program.initial_predicates,
                    params, input_tags)
    return reach.reachable_slots


def retired_outside(reachable: frozenset[int], counters) -> list[str]:
    """Retirements from slots the analyzer proved unreachable.

    ``counters`` is any counter block exposing ``retired_by_slot``; the
    same ``reachable`` set can vet every microarchitecture that ran the
    program.
    """
    return [
        f"slot {slot} retired {count} time(s) but the analyzer proved "
        "its trigger unreachable"
        for slot, count in sorted(counters.retired_by_slot.items())
        if count and slot not in reachable
    ]


def crossval_case(case: dict, params: ArchParams = DEFAULT_PARAMS,
                  bounds=None) -> dict:
    """Bidirectional fuzzer <-> checker agreement on one case.

    The fuzzer's canonical environment schedule (greedy top-up, drain
    every cycle) is one point of the schedule space the bounded checker
    explores exhaustively, so — at the same queue capacity — the two
    must agree in both directions:

    * a model divergence the fuzz harness sees must make the checker
      report ``diverged`` (it explores a superset of schedules);
    * a checker witness must reproduce when replayed through the fuzz
      harness (:func:`repro.verify.harness.check_witness`), which
      implements the run loop independently.

    Only model-divergence kinds (``state``/``hang``/``crash``) are
    compared: round-trip, analysis, and fast-vs-reference findings have
    no checker counterpart.  Returns a JSON-able dict whose ``agreed``
    is False only on a genuine cross-validation failure (one tool sees
    what the other provably should and does not); a checker that runs
    out of state budget is ``inconclusive``, not a disagreement.
    """
    from dataclasses import replace as dc_replace

    from repro.analyze.check import DEFAULT_BOUNDS
    from repro.analyze.check import check_case as checker_case
    from repro.verify.harness import check_case as fuzz_case
    from repro.verify.harness import check_witness, real_divergences

    bounds = bounds or DEFAULT_BOUNDS
    cparams = dc_replace(params, queue_capacity=bounds.queue_capacity)
    fuzz = fuzz_case(case, cparams, ref_configs=0)
    model_kinds = ("state", "hang", "crash")
    fuzz_model = [d for d in real_divergences(fuzz)
                  if d["kind"] in model_kinds]
    report = checker_case(case, params, bounds=bounds)

    problems = []
    if fuzz_model and report.verdict == "proved":
        seen = ", ".join(sorted({d["config"] or "?" for d in fuzz_model}))
        problems.append(
            f"fuzzer saw a model divergence ({seen}) but the checker "
            f"proved equivalence at capacity {bounds.queue_capacity} — "
            "the canonical schedule is in the checker's explored set, so "
            "one of the two is wrong"
        )
    if report.verdict == "diverged":
        for verdict in report.divergences:
            replay = check_witness(case, verdict.witness, params)
            if not replay["reproduced"]:
                problems.append(
                    f"checker witness for {verdict.config} "
                    f"({verdict.witness.kind}) does not reproduce through "
                    "the fuzz harness replay"
                )
    return {
        "name": case.get("name"),
        "queue_capacity": bounds.queue_capacity,
        "fuzzer_divergences": len(fuzz_model),
        "checker_verdict": report.verdict,
        "problems": problems,
        "agreed": not problems,
    }


def unreachable_retirements(
    program: Program,
    counters,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
) -> list[str]:
    """Slots that retired at runtime despite being analyzer-unreachable.

    Returns human-readable descriptions (empty when the analyzer and
    the run agree).
    """
    return retired_outside(reachable_slots(program, params, input_tags),
                           counters)
