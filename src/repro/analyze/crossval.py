"""Analyzer <-> runtime cross-validation.

The reachability interpreter over-approximates every simulator: hazards
and speculation only suppress firings, so a slot the analyzer proves
unreachable must never retire at runtime.  These helpers check exactly
that, turning every fuzz run and workload execution into a soundness
test of the static analyzer (and vice versa: a retirement from a
"proved dead" slot is a scheduler or interpreter bug either way).
"""

from __future__ import annotations

from repro.analyze.abstract import TagSets, explore
from repro.asm.program import Program
from repro.params import ArchParams, DEFAULT_PARAMS


def stream_tag_sets(streams: dict[int, list[tuple[int, int]]],
                    num_input_queues: int) -> TagSets:
    """Possible-tag sets matching a verify-harness stream plan.

    The harness feeds each input queue exactly its stream and nothing
    else, so a queue's possible tags are the tags in its stream — empty
    for queues with no stream at all.
    """
    return {
        queue: frozenset(tag for _, tag in streams.get(queue, []))
        for queue in range(num_input_queues)
    }


def reachable_slots(
    program: Program,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
) -> frozenset[int]:
    """Slots whose triggers the analyzer considers satisfiable."""
    reach = explore(program.instructions, program.initial_predicates,
                    params, input_tags)
    return reach.reachable_slots


def retired_outside(reachable: frozenset[int], counters) -> list[str]:
    """Retirements from slots the analyzer proved unreachable.

    ``counters`` is any counter block exposing ``retired_by_slot``; the
    same ``reachable`` set can vet every microarchitecture that ran the
    program.
    """
    return [
        f"slot {slot} retired {count} time(s) but the analyzer proved "
        "its trigger unreachable"
        for slot, count in sorted(counters.retired_by_slot.items())
        if count and slot not in reachable
    ]


def unreachable_retirements(
    program: Program,
    counters,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
) -> list[str]:
    """Slots that retired at runtime despite being analyzer-unreachable.

    Returns human-readable descriptions (empty when the analyzer and
    the run agree).
    """
    return retired_outside(reachable_slots(program, params, input_tags),
                           counters)
