"""Fabric-level analysis: tag flow and capacity-cycle deadlock risk.

Works from :meth:`repro.fabric.system.System.wiring` — the structured
channel inventory where channel identity is queue object identity — and
from the programs loaded onto each PE:

``tag-mismatch`` (warning)
    A producer enqueues a tag onto a channel that no trigger of the
    consumer ever accepts on that input queue.  Follows tag propagation
    through memory read ports and LSQ load paths (the response echoes
    the request tag), so a dropped EOS marker on an address stream is
    caught before it becomes a hang.

``capacity-cycle`` (warning)
    PE-to-PE channels form a directed cycle.  Every queue is bounded, so
    a cycle can deadlock once each member waits on space held up by the
    next; memory ports are excluded because they always drain their
    request queues regardless of downstream state.

The per-PE program lints also run here, sharpened by wiring knowledge:
the tags that can actually arrive on each input queue (producer emits,
port propagation, tokens preloaded at build time) bound the abstract
queue state, so a trigger waiting on a tag its channel never carries is
reported as unreachable.
"""

from __future__ import annotations

from repro.analyze.findings import Finding, Severity, attach_source
from repro.analyze.lints import analyze_program
from repro.asm.program import Program
from repro.isa.instruction import DestinationType, Instruction

#: Sentinel distinct from "no tags": the channel's traffic is unknown
#: (dangling queue with no pending tokens), so nothing may be assumed.
_UNKNOWN = None


def _program_of(pe) -> Program:
    """The Program a PE runs, preferring the assembler's source-carrying
    object (left by ``Program.configure``) over a bare reconstruction."""
    loaded = getattr(pe, "loaded_program", None)
    if loaded is not None and loaded.instructions == pe.instructions:
        return loaded
    return Program(
        instructions=list(pe.instructions),
        initial_predicates=getattr(pe, "_initial_predicates", 0),
        name=pe.name,
    )


def _emitted_tags(instructions: list[Instruction], out_index: int) -> set[int]:
    """Tags a program can enqueue onto one of its output queues."""
    return {
        ins.dp.dst.out_tag
        for ins in instructions
        if ins.valid and ins.dp.dst.kind is DestinationType.OUT
        and ins.dp.dst.index == out_index
    }


def _emitting_slots(instructions: list[Instruction], out_index: int,
                    tag: int) -> list[int]:
    return [
        slot for slot, ins in enumerate(instructions)
        if ins.valid and ins.dp.dst.kind is DestinationType.OUT
        and ins.dp.dst.index == out_index and ins.dp.dst.out_tag == tag
    ]


def _accepted_tags(instructions: list[Instruction], in_index: int,
                   num_tags: int) -> set[int] | None:
    """Tags the consumer's triggers accept on one input queue.

    ``None`` means every tag (some user of the queue places no tag
    condition on it); an empty set means no instruction references the
    queue at all.
    """
    accepted: set[int] = set()
    for ins in instructions:
        if not ins.valid or in_index not in ins.required_input_queues:
            continue
        check = next((c for c in ins.trigger.tag_checks
                      if c.queue == in_index), None)
        if check is None:
            return _UNKNOWN
        if check.negate:
            accepted |= {t for t in range(num_tags) if t != check.tag}
        else:
            accepted.add(check.tag)
    return accepted


class _Wiring:
    """Resolved view of a System: programs, channels, and tag flow."""

    def __init__(self, system) -> None:
        self.system = system
        self.pes = {pe.name: pe for pe in system.pes}
        self.programs = {pe.name: _program_of(pe) for pe in system.pes}
        self.channels = system.wiring()
        self.by_queue = {id(info.queue): info for info in self.channels}

    def effective_producer(self, info) -> tuple[str, int] | None:
        """The PE endpoint whose emitted tags reach this channel, chasing
        port propagation (response tags echo request tags)."""
        if info.producer is not None:
            return info.producer
        if info.feeds_from is not None:
            source = self.by_queue.get(id(info.feeds_from))
            if source is not None:
                return source.producer
        return None

    def possible_tags(self, info) -> set[int] | None:
        """Tags that can ever appear on a channel, or None if unknown."""
        tags = {entry.tag for entry in info.queue.entries()}
        source = info
        if info.feeds_from is not None:
            linked = self.by_queue.get(id(info.feeds_from))
            if linked is None:
                return _UNKNOWN
            tags |= {entry.tag for entry in linked.queue.entries()}
            source = linked
        if source.producer is not None:
            name, out_index = source.producer
            tags |= _emitted_tags(self.programs[name].instructions, out_index)
        elif source.port_producer is not None or not tags:
            # Port with no traceable request side, or a dangling queue
            # with nothing pending — unknown either way.
            return _UNKNOWN
        return tags


def _tag_mismatch_findings(wiring: _Wiring, params) -> list[Finding]:
    findings = []
    for info in wiring.channels:
        if info.consumer is None:
            continue             # drained by a port (always accepts) or dangling
        producer = wiring.effective_producer(info)
        if producer is None:
            continue
        producer_name, out_index = producer
        emitted = _emitted_tags(
            wiring.programs[producer_name].instructions, out_index)
        consumer_name, in_index = info.consumer
        consumer_program = wiring.programs[consumer_name]
        accepted = _accepted_tags(
            consumer_program.instructions, in_index, params.num_tags)
        if accepted is _UNKNOWN:
            continue
        via = ""
        if info.port_producer is not None:
            via = f" (propagated through {info.port_producer})"
        for tag in sorted(emitted - accepted):
            slots = _emitting_slots(
                wiring.programs[producer_name].instructions, out_index, tag)
            reason = (
                f"no trigger of {consumer_name!r} accepts tag {tag} on %i{in_index}"
                if accepted else
                f"{consumer_name!r} never reads %i{in_index}"
            )
            for slot in slots:
                ins = wiring.programs[producer_name].instructions[slot]
                findings.append(attach_source(Finding(
                    rule="tag-mismatch", severity=Severity.WARNING,
                    message=(
                        f"enqueues tag {tag} to %o{out_index}, which feeds "
                        f"{consumer_name}.%i{in_index}{via}, but {reason} — "
                        "the token can never be consumed"),
                    pe=producer_name, slot=slot,
                    line=ins.line, column=ins.column,
                ), wiring.programs[producer_name]))
    return findings


def _capacity_cycle_findings(wiring: _Wiring) -> list[Finding]:
    """Directed cycles in the PE-to-PE channel graph."""
    edges: dict[str, set[str]] = {name: set() for name in wiring.pes}
    labels: dict[tuple[str, str], list[str]] = {}
    for info in wiring.channels:
        if info.producer is None or info.consumer is None:
            continue
        src, dst = info.producer[0], info.consumer[0]
        edges[src].add(dst)
        labels.setdefault((src, dst), []).append(
            info.queue.name or f"{src}.o{info.producer[1]}")
    findings = []
    seen_cycles: set[tuple[str, ...]] = set()

    def walk(node: str, path: list[str], on_path: set[str],
             done: set[str]) -> None:
        on_path.add(node)
        path.append(node)
        for succ in sorted(edges[node]):
            if succ in on_path:
                cycle = path[path.index(succ):]
                pivot = cycle.index(min(cycle))
                key = tuple(cycle[pivot:] + cycle[:pivot])
                if key in seen_cycles:
                    continue
                seen_cycles.add(key)
                hops = " -> ".join(cycle + [succ])
                channels = "; ".join(
                    labels[(a, b)][0]
                    for a, b in zip(cycle, cycle[1:] + [succ]))
                findings.append(Finding(
                    rule="capacity-cycle", severity=Severity.WARNING,
                    message=(
                        f"PE channel cycle {hops} (channels: {channels}); "
                        "all queues are bounded, so the fabric can "
                        "deadlock once every member waits on space held "
                        "up around the loop"),
                    pe=cycle[0],
                ))
            elif succ not in done:
                walk(succ, path, on_path, done)
        on_path.discard(node)
        path.pop()
        done.add(node)

    done: set[str] = set()
    for name in sorted(edges):
        if name not in done:
            walk(name, [], set(), done)
    return findings


def input_tag_map(wiring: _Wiring, pe_name: str) -> dict[int, frozenset[int]]:
    """Per-input-queue possible-tag sets for one PE, from the wiring."""
    pe = wiring.pes[pe_name]
    tag_map: dict[int, frozenset[int]] = {}
    for index, queue in enumerate(pe.inputs):
        info = wiring.by_queue.get(id(queue))
        if info is None:
            continue
        tags = wiring.possible_tags(info)
        if tags is not None:
            tag_map[index] = frozenset(tags)
    return tag_map


def analyze_system(system, params=None) -> list[Finding]:
    """All findings for a built multi-PE system.

    Runs the program-level lints on every PE with wiring-derived tag
    knowledge, then the fabric-only rules (tag mismatch, capacity
    cycles).  Analyze a freshly *built* system: pending queue tokens
    count as possible traffic, and a drained post-run system would
    understate what channels can carry.
    """
    wiring = _Wiring(system)
    findings: list[Finding] = []
    for pe in system.pes:
        pe_params = params if params is not None else pe.params
        findings += analyze_program(
            wiring.programs[pe.name], pe_params, pe=pe.name,
            input_tags=input_tag_map(wiring, pe.name),
        )
    some_params = params
    if some_params is None and system.pes:
        some_params = system.pes[0].params
    if some_params is not None:
        findings += _tag_mismatch_findings(wiring, some_params)
    findings += _capacity_cycle_findings(wiring)
    return findings
