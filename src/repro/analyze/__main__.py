"""Command-line front end: ``python -m repro.analyze``.

Modes (combinable; findings are concatenated):

* positional ``file.s`` arguments — assemble and lint each program;
* ``--workloads [NAME ...]`` — build the named Table 3 workloads (all
  ten when no names are given) and run the full program + fabric
  analysis over each system;
* ``--corpus DIR`` — lint every saved fuzz case in a corpus directory
  and cross-validate analyzer reachability against a golden-model run;
* ``--fuzz N`` — generate ``N`` fresh cases (``--seed`` selects the
  stream) and cross-validate each the same way;
* ``--perf`` — static CPI/throughput bounds and the performance finding
  rules per workload worker (``--perf --smoke`` runs the CI validation
  gate: measured CPI must fall inside the static bounds on three
  workloads across all 48 configs);
* ``--smoke`` — the CI battery: all workloads plus a small fuzz sweep,
  failing on any warning-or-worse finding.

``--format`` selects text, JSON, or SARIF output; ``--fail-on`` sets
the severity at which findings flip the exit status (default
``warning``, so speculation-window notes never fail a build).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analyze.crossval import stream_tag_sets, unreachable_retirements
from repro.analyze.fabric import analyze_system
from repro.analyze.findings import (
    Finding,
    Severity,
    fails_build,
    render_json,
    render_sarif,
    render_text,
)
from repro.analyze.lints import analyze_program
from repro.asm.assembler import assemble_file
from repro.errors import ReproError
from repro.params import DEFAULT_PARAMS


def _workload_findings(names: list[str]) -> list[Finding]:
    from repro.workloads.suite import WORKLOADS, get_workload

    findings = []
    for name in names or WORKLOADS():
        workload = get_workload(name)
        system = workload.build(workload.default_pe_factory(),
                                workload.default_scale, seed=0)
        for finding in analyze_system(system, workload.params):
            findings.append(Finding(
                rule=finding.rule, severity=finding.severity,
                message=finding.message,
                pe=f"{name}/{finding.pe}" if finding.pe else name,
                slot=finding.slot, line=finding.line, column=finding.column,
                snippet=finding.snippet,
            ))
    return findings


def _case_findings(case: dict, lint: bool) -> list[Finding]:
    """Cross-validate one fuzz case; optionally lint it too.

    Lint findings on generated programs are informational (the generator
    explores odd-but-legal shapes); a retirement from an
    analyzer-unreachable slot is always an error — it falsifies either
    the interpreter or the scheduler.
    """
    from repro.arch import FunctionalPE
    from repro.asm.assembler import assemble
    from repro.verify.generator import case_source, case_streams
    from repro.verify.harness import GOLDEN_WATCHDOG, _run_model

    name = case.get("name", "case")
    try:
        program = assemble(case_source(case), DEFAULT_PARAMS, name=name)
    except ReproError:
        # Shrinker reductions can leave dangling states; not analyzable.
        return []
    findings = list(analyze_program(program, DEFAULT_PARAMS, pe=name)
                    ) if lint else []
    streams = case_streams(case)
    pe = FunctionalPE(DEFAULT_PARAMS, name=name)
    program.configure(pe)
    if _run_model(pe, streams, GOLDEN_WATCHDOG) is None:
        return findings          # generator bug, not an analyzer claim
    tag_sets = stream_tag_sets(streams, DEFAULT_PARAMS.num_input_queues)
    for problem in unreachable_retirements(program, pe.counters,
                                           DEFAULT_PARAMS, tag_sets):
        findings.append(Finding(
            rule="crossval-unreachable-retire", severity=Severity.ERROR,
            message=problem, pe=name,
        ))
    return findings


def _corpus_findings(directory: str) -> list[Finding]:
    findings = []
    paths = sorted(Path(directory).glob("*.json"))
    if not paths:
        raise ReproError(f"no corpus cases (*.json) under {directory!r}")
    for path in paths:
        case = json.loads(path.read_text())
        findings += _case_findings(case, lint=False)
    return findings


def _fuzz_findings(count: int, seed: int) -> list[Finding]:
    from repro.verify.generator import generate_case

    findings = []
    for index in range(count):
        findings += _case_findings(generate_case(seed + index), lint=False)
    return findings


def _report_findings(report, subject: str) -> list[Finding]:
    """Fold one CheckReport into findings (problems only; proofs are
    silent so ``--fail-on note`` still passes on a fully proved run)."""
    findings = []
    if report.verdict == "diverged":
        for verdict in report.divergences:
            findings.append(Finding(
                rule="check-divergence", severity=Severity.ERROR,
                message=f"{verdict.config}: {verdict.detail} "
                        f"[witness: {verdict.witness.cycles()} cycles, "
                        f"capacity {report.bounds.queue_capacity}]",
                pe=subject,
            ))
    elif report.verdict in ("inconclusive", "not-checkable"):
        findings.append(Finding(
            rule=f"check-{report.verdict}", severity=Severity.NOTE,
            message=report.detail or "state budget exhausted", pe=subject,
        ))
    elif report.verdict in ("golden-nondet", "golden-stuck"):
        findings.append(Finding(
            rule=f"check-{report.verdict}", severity=Severity.WARNING,
            message=report.detail, pe=subject,
        ))
    return findings


#: The --perf --smoke battery: three workloads with distinct binding
#: mechanisms (predicate loop, streaming channel chain, long +P loop
#: body) x all 48 configs, simulated at a scale that keeps the gate
#: under the CI job's 30-second budget.
_PERF_SMOKE_WORKLOADS = ["gcd", "stream", "udiv"]
_PERF_SMOKE_SCALE = 8


def _perf_findings(args) -> list[Finding]:
    """The ``--perf`` mode: static CPI bounds and their finding rules.

    Plain ``--perf`` reports the three performance rules per workload
    worker (bounds summary on stderr, findings through the ordinary
    emitters); ``--perf --smoke`` instead runs the validation gate —
    simulate (workload x config) pairs and emit a
    ``perf-bound-violated`` error for any measured CPI outside the
    static bounds.
    """
    from repro.analyze.perf import bracket_check, workload_analyzer
    from repro.pipeline.config import all_configs
    from repro.workloads.suite import WORKLOADS

    findings: list[Finding] = []
    if args.smoke:
        names = args.workloads or _PERF_SMOKE_WORKLOADS
        rows, violations = bracket_check(
            workloads=names, scale=_PERF_SMOKE_SCALE, seed=args.seed)
        bracketed = sum(1 for row in rows if row["bracketed"])
        print(f"perf: {bracketed}/{len(rows)} (workload, config) pairs "
              f"bracketed by static bounds", file=sys.stderr)
        return findings + violations

    configs = all_configs(include_padded=True)
    for name in args.workloads or WORKLOADS():
        analyzer, worker = workload_analyzer(name)
        bounds = [analyzer.bounds(worker, config) for config in configs]
        lows = [b.lower for b in bounds]
        ups = [b.upper for b in bounds]
        print(f"perf: {name}/{worker}: static CPI lower "
              f"{min(lows):.2f}-{max(lows):.2f}, upper "
              f"{min(ups):.2f}-{max(ups):.2f} over {len(configs)} configs",
              file=sys.stderr)
        findings += analyzer.findings(worker, configs)
    return findings


def _check_findings(args) -> list[Finding]:
    """The ``--check`` mode: bounded equivalence proofs + the
    bidirectional checker-vs-fuzzer cross-validation gate."""
    from repro.analyze.check import (
        CheckBounds,
        check_case,
        check_program,
        checkable_workloads,
    )
    from repro.analyze.crossval import crossval_case
    from repro.verify.generator import generate_case

    bounds = CheckBounds(queue_capacity=args.check_depth,
                         max_states=args.check_states)
    findings: list[Finding] = []

    wanted = args.workloads
    if args.smoke:
        wanted = ["gcd", "stream"]      # the sub-minute CI pair
    if wanted is not None:
        available = {name: (program, streams, params)
                     for name, program, streams, params
                     in checkable_workloads()}
        names = list(available) if not wanted else wanted
        for name in names:
            if name not in available:
                findings.append(Finding(
                    rule="check-not-checkable", severity=Severity.NOTE,
                    message=f"workload {name!r} has no bounded checker "
                            f"instance (available: {sorted(available)})",
                    pe=name,
                ))
                continue
            program, streams, params = available[name]
            report = check_program(program, streams, params,
                                   bounds=bounds, name=name)
            print(f"check: workload {name}: {report.verdict} "
                  f"({report.states_total} states)", file=sys.stderr)
            findings += _report_findings(report, f"workload/{name}")

    corpus_cases: list[dict] = []
    if args.corpus:
        paths = sorted(Path(args.corpus).glob("*.json"))
        if not paths:
            raise ReproError(f"no corpus cases (*.json) under "
                             f"{args.corpus!r}")
        corpus_cases = [json.loads(path.read_text()) for path in paths]
    for case in corpus_cases:
        name = case.get("name", "case")
        report = check_case(case, DEFAULT_PARAMS, bounds=bounds)
        print(f"check: corpus {name}: {report.verdict} "
              f"({report.states_total} states)", file=sys.stderr)
        findings += _report_findings(report, f"corpus/{name}")

    for index in range(args.fuzz):
        case = generate_case(args.seed + index)
        report = check_case(case, DEFAULT_PARAMS, bounds=bounds)
        print(f"check: fuzz {case['name']}: {report.verdict} "
              f"({report.states_total} states)", file=sys.stderr)
        findings += _report_findings(report, f"fuzz/{case['name']}")

    # Cross-validation gate: fuzzer and checker must agree on the
    # corpus (one case suffices for the smoke battery's time budget —
    # the full matrix runs in the test suite).
    gate_cases = corpus_cases[:1] if args.smoke else corpus_cases
    for case in gate_cases:
        verdict = crossval_case(case, DEFAULT_PARAMS, bounds=bounds)
        for problem in verdict["problems"]:
            findings.append(Finding(
                rule="check-crossval", severity=Severity.ERROR,
                message=problem, pe=f"corpus/{case.get('name')}",
            ))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Static analyzer for triggered-assembly programs.",
    )
    parser.add_argument("files", nargs="*", metavar="file.s",
                        help="assembly sources to lint")
    parser.add_argument("--workloads", nargs="*", metavar="NAME",
                        default=None,
                        help="analyze built workload systems "
                             "(all ten when no names given)")
    parser.add_argument("--corpus", metavar="DIR",
                        help="cross-validate saved fuzz cases")
    parser.add_argument("--fuzz", type=int, metavar="N", default=0,
                        help="generate and cross-validate N fresh cases")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for --fuzz (default 0)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI battery: all workloads + 25 fuzz cases "
                             "(with --check: corpus + gcd + stream proofs)")
    parser.add_argument("--check", action="store_true",
                        help="run the bounded equivalence checker instead "
                             "of the lint/crossval pass")
    parser.add_argument("--perf", action="store_true",
                        help="static CPI/throughput bounds per workload "
                             "(with --smoke: validate bounds bracket the "
                             "simulator on 3 workloads x 48 configs)")
    parser.add_argument("--check-depth", type=int, default=2,
                        metavar="CAP",
                        help="queue capacity bound for --check (default 2)")
    parser.add_argument("--check-states", type=int, default=20_000,
                        metavar="N",
                        help="state budget per exploration for --check "
                             "(default 20000)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--fail-on", default="warning",
                        choices=("error", "warning", "note", "never"),
                        help="severity that flips the exit status "
                             "(default: warning)")
    args = parser.parse_args(argv)

    if args.check and args.perf:
        parser.error("--check and --perf are separate modes; pick one")
    if args.smoke:
        if args.check or args.perf:
            if args.check and not args.corpus:
                args.corpus = "tests/corpus"
        else:
            if args.workloads is None:
                args.workloads = []
            if not args.fuzz:
                args.fuzz = 25
    if (not args.files and args.workloads is None and not args.corpus
            and not args.fuzz and not args.perf):
        parser.error("nothing to analyze: give files, --workloads, "
                     "--corpus, --fuzz, or --perf")

    findings: list[Finding] = []
    try:
        if args.check:
            if args.files:
                parser.error("--check works on --workloads/--corpus/"
                             "--fuzz, not assembly files")
            findings += _check_findings(args)
        elif args.perf:
            if args.files or args.corpus or args.fuzz:
                parser.error("--perf works on --workloads (Table 3 "
                             "systems), not files/--corpus/--fuzz")
            findings += _perf_findings(args)
        else:
            for path in args.files:
                program = assemble_file(path)
                findings += analyze_program(
                    program, DEFAULT_PARAMS,
                    pe=program.name or Path(path).name)
            if args.workloads is not None:
                findings += _workload_findings(args.workloads)
            if args.corpus:
                findings += _corpus_findings(args.corpus)
            if args.fuzz:
                findings += _fuzz_findings(args.fuzz, args.seed)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    print(renderer(findings))

    return 1 if fails_build(findings, args.fail_on) else 0


if __name__ == "__main__":
    sys.exit(main())
