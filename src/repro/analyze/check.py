"""Bounded explicit-state equivalence checker (ROADMAP item 4).

The differential fuzzer samples one claim — every pipelined
microarchitecture retires identically to the single-cycle reference —
under one *canonical* environment schedule (inputs topped up whenever
capacity frees, outputs drained every cycle).  This module proves the
claim per program for **all** bounded environment schedules: each cycle
the environment may deliver anywhere from zero tokens up to the free
capacity of every input queue, and drain any number of entries from
every output queue.  Both models are internally deterministic, so the
schedule is the *only* source of nondeterminism; exploring every
schedule at a small queue depth is an exhaustive proof at that bound.

The algorithm is a BFS over canonical product states
(:mod:`repro.analyze.encode`):

1. Explore the golden :class:`~repro.arch.FunctionalPE` under all
   schedules.  Every halting path must reach the *same* architectural
   fingerprint (registers, predicates, scratchpad, committed output
   streams, unconsumed inputs) — otherwise the program itself is
   schedule-nondeterministic and equivalence is not well defined
   (``golden-nondet``).  Hangs (states from which no schedule reaches a
   halt) make it ``golden-stuck``.
2. Explore each pipelined configuration the same way, checking every
   committed output against the golden stream as it appears (a short
   witness the moment the prefix diverges) and every halting state
   against the golden fingerprint.  A state from which no continuation
   can halt is a hang divergence.

Divergences come back as :class:`~repro.analyze.witness.Witness`
schedules that replay through :func:`repro.verify.harness.check_witness`
and minimize through the fuzzer's shrinker.  The checker also records
every *forbidden cycle* it observes (a dequeue held back by outstanding
speculation, Section 5.2) as ``(writer slot, held slot)`` pairs — the
ground truth that hardens the ``speculation-window`` lint.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product

from repro.analyze.encode import node_key
from repro.analyze.witness import Witness, schedule_step
from repro.arch import FunctionalPE
from repro.arch.scheduler import TriggerKind
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline import PipelinedPE, all_configs


@dataclass(frozen=True)
class CheckBounds:
    """Knobs bounding the explored space.

    ``queue_capacity`` is the architectural queue depth of the checked
    world (the fuzzer's default world is depth 4; depth 1 and 2 are
    where conservatism and visibility-window corners live and keep the
    space small).  ``max_states`` caps visited states per model
    exploration; exceeding it yields ``inconclusive``, never a false
    proof.  ``max_stream_tokens`` refuses pathologically long inputs.
    """

    queue_capacity: int = 2
    max_states: int = 20_000
    max_stream_tokens: int = 32


DEFAULT_BOUNDS = CheckBounds()


@dataclass
class ConfigVerdict:
    """Outcome of one configuration's exploration."""

    config: str
    verdict: str               # "proved" | "diverged" | "inconclusive"
    states: int
    transitions: int
    witness: Witness | None = None
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "config": self.config,
            "verdict": self.verdict,
            "states": self.states,
            "transitions": self.transitions,
            "witness": self.witness.as_dict() if self.witness else None,
            "detail": self.detail,
        }


@dataclass
class CheckReport:
    """Outcome of checking one program across configurations."""

    name: str
    verdict: str    # "proved" | "diverged" | "inconclusive" |
                    # "golden-nondet" | "golden-stuck" | "not-checkable"
    bounds: CheckBounds
    golden_states: int = 0
    configs: list[ConfigVerdict] = field(default_factory=list)
    forbidden_pairs: frozenset = frozenset()
    detail: str = ""

    @property
    def divergences(self) -> list[ConfigVerdict]:
        return [c for c in self.configs if c.verdict == "diverged"]

    @property
    def states_total(self) -> int:
        return self.golden_states + sum(c.states for c in self.configs)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "queue_capacity": self.bounds.queue_capacity,
            "golden_states": self.golden_states,
            "states_total": self.states_total,
            "configs": [c.as_dict() for c in self.configs],
            "forbidden_pairs": sorted(self.forbidden_pairs),
            "detail": self.detail,
        }


class _Diverged(Exception):
    """Internal control flow: exploration found a counterexample."""

    def __init__(self, kind: str, detail: str, path: list[tuple]) -> None:
        super().__init__(detail)
        self.kind = kind
        self.detail = detail
        self.path = path


class _Explorer:
    """BFS over one PE's schedule-induced state space."""

    def __init__(self, pe, streams: tuple[tuple, ...], capacity: int,
                 bounds: CheckBounds, reference: dict | None) -> None:
        self.pe = pe
        self.streams = streams
        self.capacity = capacity
        self.bounds = bounds
        #: Golden fingerprint dict, or None while exploring the golden
        #: model itself.
        self.reference = reference
        self.num_inputs = len(pe.inputs)
        self.num_outputs = len(pe.outputs)
        self.out_index = 6 if isinstance(pe, PipelinedPE) else 5
        self.parents: dict[tuple, tuple] = {}
        self.children: dict[tuple, list[tuple]] = {}
        self.halted: list[tuple] = []
        self.fingerprints: dict[tuple, tuple] = {}  # fingerprint -> node
        self.transitions = 0
        self.complete = False
        self.forbidden_pairs: set[tuple[int, int]] = set()

    # -- state plumbing -------------------------------------------------

    def _root(self) -> tuple:
        return node_key(
            self.pe.snapshot_arch_state(),
            (0,) * self.num_inputs,
            ((),) * self.num_outputs,
        )

    def _leftovers(self, delivered: tuple[int, ...]) -> tuple:
        """Unconsumed input per queue: live entries + undelivered backlog."""
        left = []
        for q, queue in enumerate(self.pe.inputs):
            live = tuple((e.value, e.tag) for e in queue._live)
            left.append(live + self.streams[q][delivered[q]:])
        return tuple(left)

    def _fingerprint(self, state: tuple, delivered: tuple,
                     produced: tuple) -> tuple:
        return (
            state[0],                       # regs
            state[1],                       # preds
            state[2],                       # scratchpad (non-zero words)
            produced,                       # committed output streams
            self._leftovers(delivered),     # unconsumed inputs
        )

    def _deliver_options(self, state: tuple, delivered: tuple) -> list:
        """Per-queue 0..min(free, remaining) token counts, as a product."""
        per_queue = []
        for q in range(self.num_inputs):
            live, staged = state[self.out_index - 1][q]
            free = self.capacity - len(live) - len(staged)
            remaining = len(self.streams[q]) - delivered[q]
            per_queue.append(range(0, min(free, remaining) + 1))
        return list(product(*per_queue))

    def _path(self, key: tuple, action: tuple | None) -> list[tuple]:
        """Action list from the root to ``key`` (plus a final action)."""
        actions: list[tuple] = [] if action is None else [action]
        while True:
            parent = self.parents[key]
            if parent is None:
                break
            key, step = parent
            actions.append(step)
        actions.reverse()
        return actions

    def _observe_forbidden(self) -> None:
        """Record (writer slot, held slot) for a live forbidden cycle."""
        pe = self.pe
        outcome = pe.scheduler.evaluate(
            pe.instructions, pe.preds.state, pe._view,
            pending_predicates=pe._pending_predicates(),
            forbid_side_effects=True,
            compiled=pe._compiled,
        )
        if outcome.kind is not TriggerKind.FORBIDDEN:
            return
        for spec in pe._specs:
            for entry in pe._pipe:
                if entry is not None and entry.seq == spec.owner_seq:
                    self.forbidden_pairs.add((entry.slot, outcome.index))

    # -- the search -----------------------------------------------------

    def run(self) -> None:
        """Explore until exhaustion, budget, or a divergence
        (:class:`_Diverged`)."""
        root = self._root()
        self.parents[root] = None
        frontier = [root]
        visited = 1
        while frontier:
            if visited > self.bounds.max_states:
                return      # incomplete; self.complete stays False
            next_frontier: list[tuple] = []
            for key in frontier:
                fresh = self._expand(key)
                visited += len(fresh)
                next_frontier.extend(fresh)
            frontier = next_frontier
        self.complete = True

    def _expand(self, key: tuple) -> list[tuple]:
        state, delivered, produced = key
        if state[3]:            # halted: terminal node
            self.children[key] = []
            return []
        pe = self.pe
        successors: list[tuple] = []
        edges: list[tuple] = []
        for deliver in self._deliver_options(state, delivered):
            pe.restore_arch_state(state)
            for q, count in enumerate(deliver):
                for i in range(count):
                    value, tag = self.streams[q][delivered[q] + i]
                    pe.inputs[q].enqueue(value, tag)
            if getattr(pe, "_specs", None):
                self._observe_forbidden()
            try:
                pe.step()
                pe.commit_queues()
            except Exception as exc:    # noqa: BLE001 — a model crash is
                # itself the counterexample (queue accounting bugs often
                # surface as exceptions before they surface as state).
                raise _Diverged(
                    "crash", f"{type(exc).__name__}: {exc}",
                    self._path(key, (deliver, (0,) * self.num_outputs)),
                ) from None
            new_delivered = tuple(
                delivered[q] + deliver[q] for q in range(self.num_inputs)
            )
            # Record (and prefix-check) entries committed this cycle.
            new_produced = []
            for q, queue in enumerate(pe.outputs):
                log = produced[q]
                fresh = tuple(
                    (e.value, e.tag)
                    for e in list(queue._live)[len(state[self.out_index][q][0]):]
                )
                if self.reference is not None and fresh:
                    ref = self.reference["produced"][q]
                    for offset, entry in enumerate(fresh):
                        position = len(log) + offset
                        if position >= len(ref) or ref[position] != entry:
                            raise _Diverged(
                                "output",
                                f"output %o{q} entry {position}: produced "
                                f"{entry}, golden stream has "
                                f"{ref[position] if position < len(ref) else '<nothing>'}",
                                self._path(
                                    key, (deliver, (0,) * self.num_outputs)),
                            )
                new_produced.append(log + fresh)
            new_produced = tuple(new_produced)
            new_state = pe.snapshot_arch_state()
            if pe.halted:
                fingerprint = self._fingerprint(
                    new_state, new_delivered, new_produced)
                action = (deliver, (0,) * self.num_outputs)
                succ = node_key(new_state, new_delivered, new_produced)
                if succ not in self.parents:
                    self.parents[succ] = (key, action)
                    successors.append(succ)
                if self.reference is not None:
                    fields = _diff_fingerprints(
                        self.reference["fingerprint"], fingerprint)
                    if fields:
                        raise _Diverged(
                            "state", "; ".join(fields),
                            self._path(key, action),
                        )
                self.fingerprints.setdefault(fingerprint, succ)
                self.halted.append(succ)
                edges.append(succ)
                continue
            # Drain combinations are free derivations of the encoded
            # state: trimming k entries off an output queue's head needs
            # no re-simulation.
            out_states = new_state[self.out_index]
            drain_ranges = [
                range(0, len(out_states[q][0]) + 1)
                for q in range(self.num_outputs)
            ]
            for drain in product(*drain_ranges):
                if any(drain):
                    trimmed = tuple(
                        (live[drain[q]:], staged)
                        for q, (live, staged) in enumerate(out_states)
                    )
                    drained_state = (new_state[:self.out_index]
                                     + (trimmed,)
                                     + new_state[self.out_index + 1:])
                else:
                    drained_state = new_state
                succ = node_key(drained_state, new_delivered, new_produced)
                if succ not in self.parents:
                    self.parents[succ] = (key, (deliver, drain))
                    successors.append(succ)
                edges.append(succ)
        self.transitions += len(edges)
        self.children[key] = edges
        return successors

    # -- hang analysis --------------------------------------------------

    def hang_witness(self) -> tuple | None:
        """A state from which no schedule can reach a halt, or None.

        Only sound after a *complete* exploration: with the whole graph
        in hand, backward reachability from the halting states marks
        everything that can still converge; anything else is a hang (the
        environment is fair — delivery and drain actions are always
        eventually available — so unreachability of halt is livelock or
        deadlock, not starvation)."""
        if not self.complete:
            return None
        can_halt = set(self.halted)
        reverse: dict[tuple, list[tuple]] = {}
        for parent, kids in self.children.items():
            for kid in kids:
                reverse.setdefault(kid, []).append(parent)
        frontier = list(can_halt)
        while frontier:
            node = frontier.pop()
            for parent in reverse.get(node, ()):
                if parent not in can_halt:
                    can_halt.add(parent)
                    frontier.append(parent)
        for key in self.parents:        # insertion order = BFS order
            if key not in can_halt:
                return key
        return None


def _diff_fingerprints(golden: tuple, candidate: tuple) -> list[str]:
    fields = []
    for index, label in enumerate(
            ("regs", "preds", "scratchpad", "outputs", "inputs_left")):
        if golden[index] != candidate[index]:
            fields.append(f"{label}: golden={golden[index]!r} "
                          f"candidate={candidate[index]!r}")
    return fields


def _normalize_streams(streams: dict[int, list[tuple[int, int]]],
                       num_inputs: int) -> tuple[tuple, ...]:
    return tuple(
        tuple((int(v), int(t)) for v, t in streams.get(q, []))
        for q in range(num_inputs)
    )


def _witness_from(exp: _Explorer, config_name: str, bounds: CheckBounds,
                  kind: str, detail: str, path: list[tuple]) -> Witness:
    return Witness(
        kind=kind,
        config=config_name,
        queue_capacity=bounds.queue_capacity,
        schedule=[schedule_step(deliver, drain) for deliver, drain in path],
        detail=detail,
    )


def _explore(pe, streams: tuple[tuple, ...], capacity: int,
             bounds: CheckBounds, reference: dict | None,
             config_name: str) -> tuple[_Explorer, ConfigVerdict]:
    """Run one exploration; fold the outcome into a ConfigVerdict."""
    exp = _Explorer(pe, streams, capacity, bounds, reference)
    try:
        exp.run()
    except _Diverged as div:
        witness = _witness_from(exp, config_name, bounds, div.kind,
                                div.detail, div.path)
        return exp, ConfigVerdict(
            config=config_name, verdict="diverged",
            states=len(exp.parents), transitions=exp.transitions,
            witness=witness, detail=f"{div.kind}: {div.detail}",
        )
    if exp.complete:
        hang = exp.hang_witness()
        if hang is not None:
            path = exp._path(hang, None)
            witness = _witness_from(
                exp, config_name, bounds, "hang",
                "no environment schedule can reach a halt from this state",
                path)
            return exp, ConfigVerdict(
                config=config_name, verdict="diverged",
                states=len(exp.parents), transitions=exp.transitions,
                witness=witness,
                detail="hang: unreachable halt after "
                       f"{len(path)} scheduled cycles",
            )
        return exp, ConfigVerdict(
            config=config_name, verdict="proved",
            states=len(exp.parents), transitions=exp.transitions,
        )
    return exp, ConfigVerdict(
        config=config_name, verdict="inconclusive",
        states=len(exp.parents), transitions=exp.transitions,
        detail=f"state budget of {bounds.max_states} exhausted",
    )


def check_program(program, streams: dict[int, list[tuple[int, int]]],
                  params: ArchParams = DEFAULT_PARAMS,
                  configs=None, bounds: CheckBounds = DEFAULT_BOUNDS,
                  name: str = "program") -> CheckReport:
    """Prove (or refute) retirement equivalence for one program.

    ``program`` is an assembled :class:`~repro.asm.program.Program`;
    ``streams`` the input-token plan (queue index -> [(value, tag)...]).
    ``configs`` defaults to the full 48-configuration matrix.
    """
    cparams = replace(params, queue_capacity=bounds.queue_capacity)
    streams_t = _normalize_streams(streams, cparams.num_input_queues)
    total_tokens = sum(len(s) for s in streams_t)
    if total_tokens > bounds.max_stream_tokens:
        return CheckReport(
            name=name, verdict="not-checkable", bounds=bounds,
            detail=f"{total_tokens} stream tokens exceed the "
                   f"{bounds.max_stream_tokens}-token bound",
        )
    if configs is None:
        configs = all_configs(include_padded=True)

    golden = FunctionalPE(cparams, name=f"{name}-golden")
    program.configure(golden)
    gexp, gverdict = _explore(golden, streams_t, bounds.queue_capacity,
                              bounds, None, "golden")
    report = CheckReport(name=name, verdict="proved", bounds=bounds,
                         golden_states=len(gexp.parents))
    if gverdict.verdict == "diverged":
        kind = gverdict.witness.kind if gverdict.witness else "crash"
        report.verdict = ("golden-stuck" if kind == "hang"
                          else "not-checkable")
        report.detail = f"golden model: {gverdict.detail}"
        return report
    if gverdict.verdict == "inconclusive":
        report.verdict = "inconclusive"
        report.detail = f"golden model: {gverdict.detail}"
        return report
    if len(gexp.fingerprints) != 1:
        report.verdict = "golden-nondet"
        report.detail = (
            f"golden model reaches {len(gexp.fingerprints)} distinct final "
            "states under different schedules — equivalence is not well "
            "defined for this program"
        )
        return report
    fingerprint = next(iter(gexp.fingerprints))
    reference = {"fingerprint": fingerprint, "produced": fingerprint[3]}

    forbidden: set[tuple[int, int]] = set()
    for config in configs:
        pe = PipelinedPE(config, cparams, name=f"{name}-{config.name}")
        program.configure(pe)
        exp, verdict = _explore(pe, streams_t, bounds.queue_capacity,
                                bounds, reference, config.name)
        forbidden |= exp.forbidden_pairs
        report.configs.append(verdict)
    report.forbidden_pairs = frozenset(forbidden)
    if any(c.verdict == "diverged" for c in report.configs):
        report.verdict = "diverged"
    elif any(c.verdict == "inconclusive" for c in report.configs):
        report.verdict = "inconclusive"
    return report


def check_case(case: dict, params: ArchParams = DEFAULT_PARAMS,
               configs=None,
               bounds: CheckBounds = DEFAULT_BOUNDS) -> CheckReport:
    """Check one fuzzer/corpus case (see :mod:`repro.verify.generator`)."""
    from repro.asm.assembler import assemble
    from repro.verify.generator import case_source, case_streams

    name = case.get("name", "case")
    try:
        program = assemble(case_source(case, params), params, name=name)
    except Exception as exc:    # noqa: BLE001 — shrinker reductions leave
        # dangling states; such cases are not checkable, not divergent.
        return CheckReport(
            name=name, verdict="not-checkable", bounds=bounds,
            detail=f"case does not assemble: {exc!r}",
        )
    return check_program(program, case_streams(case), params,
                         configs=configs, bounds=bounds, name=name)


def confirm_speculation_window(program, streams,
                               params: ArchParams = DEFAULT_PARAMS,
                               bounds: CheckBounds = DEFAULT_BOUNDS,
                               configs=None) -> dict:
    """Validate the speculation-window lint against observed reality.

    Runs the checker (collecting every *observed* forbidden cycle as a
    ``(writer slot, held slot)`` pair) and the static lint with the
    stream-derived tag sets, then compares:

    * ``unflagged`` — pairs the checker observed but the lint missed:
      lint false negatives, always a lint bug (the checker exhibits a
      concrete reachable cycle).
    * ``unconfirmed`` — lint pairs the checker never observed under
      these streams at this bound: not necessarily false positives (the
      lint quantifies over all streams), but candidates for downgrading
      when no stream confirms them.
    * ``confirmed`` — lint pairs backed by a reachable forbidden cycle.
    """
    from repro.analyze.crossval import stream_tag_sets
    from repro.analyze.lints import speculation_pairs

    if configs is None:
        configs = [config for config in all_configs(include_padded=True)
                   if config.predicate_prediction]
    report = check_program(program, streams, params, configs=configs,
                           bounds=bounds, name=program.name or "program")
    tags = stream_tag_sets(
        {q: list(s) for q, s in streams.items()},
        params.num_input_queues)
    lint = speculation_pairs(program, params, tags)
    observed = set(report.forbidden_pairs)
    return {
        "verdict": report.verdict,
        "observed": sorted(observed),
        "lint": sorted(lint),
        "confirmed": sorted(lint & observed),
        "unconfirmed": sorted(lint - observed),
        "unflagged": sorted(observed - lint),
    }


def checkable_workloads(params: ArchParams = DEFAULT_PARAMS) -> list[tuple]:
    """Bounded Table 3 workload instances the checker can afford.

    Returns ``(name, program, streams, params)`` tuples.  Workloads run
    inside a :class:`~repro.fabric.system.System`; the checker strips
    the fabric and plays the environment itself, feeding what the memory
    ports would have produced as input streams and absorbing requests as
    output streams.  ``udiv`` is scaled down to an 8-bit word so one
    division fits the state budget (the division loop's shape is
    word-width-independent)."""
    from repro.workloads.common import counter_producer
    from repro.workloads.gcd import gcd_program
    from repro.workloads.udiv import divider_program

    udiv_params = replace(params, word_width=8)
    return [
        # gcd requests addresses 0 and 1 on %o0, then consumes the two
        # operands from %i0; gcd(5, 3) converges in four subtractions.
        ("gcd", gcd_program(params), {0: [(5, 0), (3, 0)]}, params),
        # stream's worker: the pure sequential emit loop, no inputs.
        ("stream", counter_producer(0, 4, params, eos="none"), {}, params),
        # One 8-bit restoring division (11 / 3) plus the EOS sentinel.
        ("udiv", divider_program(udiv_params, 8),
         {0: [(11, 0), (3, 0), (0, 1)]}, udiv_params),
    ]


def checker_oracle(params: ArchParams = DEFAULT_PARAMS, configs=None,
                   bounds: CheckBounds = DEFAULT_BOUNDS):
    """A shrinker oracle: is this (reduced) case checker-divergent?

    Passed to :func:`repro.verify.shrinker.shrink_case` so entry/token
    deletions keep only reductions under which the *checker* still finds
    a counterexample — the checker re-derives a fresh schedule for every
    candidate, so witness validity under reduction is automatic.
    """
    def divergent(candidate: dict) -> bool:
        return check_case(candidate, params, configs=configs,
                          bounds=bounds).verdict == "diverged"
    return divergent
