"""Static analyzer for triggered-assembly programs and fabrics.

Three layers:

* :mod:`repro.analyze.abstract` — exhaustive reachability over the
  finite predicate-vector state space, with queues kept abstract;
* :mod:`repro.analyze.lints` — program-level rules (unreachable and
  unsatisfiable triggers, shadowed and overlapping triggers, redundant
  predicate literals, speculation-window dequeues);
* :mod:`repro.analyze.fabric` — system-level rules over the channel
  wiring (tag mismatches through ports, capacity-cycle deadlock risk);
* :mod:`repro.analyze.perf` — static CPI/throughput bounds per
  (program, pipeline config) by cycle-mean analysis over the weighted
  firing-transition graph (:mod:`repro.analyze.graph`), validated to
  bracket the simulator and consumed by the DSE pruning oracle
  (:mod:`repro.dse.prune`).

A fourth layer proves rather than lints:

* :mod:`repro.analyze.check` — a bounded explicit-state equivalence
  checker exploring every environment schedule at small queue depths,
  proving pipelined == single-cycle retirement per program and
  configuration or emitting a replayable counterexample schedule
  (:mod:`repro.analyze.witness`, encoded via
  :mod:`repro.analyze.encode`).

``python -m repro.analyze`` is the command-line front end (``--check``
selects the checker); :mod:`repro.analyze.crossval` ties analyzer
verdicts to fuzzer runs and checker verdicts to harness replays.
"""

from repro.analyze.abstract import Reachability, explore
from repro.analyze.check import (
    CheckBounds,
    CheckReport,
    ConfigVerdict,
    check_case,
    check_program,
    checkable_workloads,
    checker_oracle,
    confirm_speculation_window,
)
from repro.analyze.crossval import (
    crossval_case,
    reachable_slots,
    retired_outside,
    stream_tag_sets,
    unreachable_retirements,
)
from repro.analyze.encode import node_digest, node_key, roundtrips
from repro.analyze.witness import Witness, replay_witness, schedule_step
from repro.analyze.fabric import analyze_system
from repro.analyze.findings import (
    Finding,
    Severity,
    count_by_severity,
    fails_build,
    render_json,
    render_sarif,
    render_text,
    worst_severity,
)
from repro.analyze.graph import FiringGraph, build_firing_graph, cycle_mean
from repro.analyze.lints import analyze_program
from repro.analyze.perf import (
    PerfAnalyzer,
    PerfBounds,
    bracket_check,
    config_lower_bounds,
    program_bounds,
    workload_bounds,
)

__all__ = [
    "CheckBounds",
    "CheckReport",
    "ConfigVerdict",
    "Finding",
    "FiringGraph",
    "PerfAnalyzer",
    "PerfBounds",
    "Reachability",
    "Severity",
    "Witness",
    "analyze_program",
    "analyze_system",
    "bracket_check",
    "build_firing_graph",
    "check_case",
    "check_program",
    "checkable_workloads",
    "checker_oracle",
    "config_lower_bounds",
    "confirm_speculation_window",
    "count_by_severity",
    "crossval_case",
    "cycle_mean",
    "explore",
    "fails_build",
    "node_digest",
    "node_key",
    "program_bounds",
    "reachable_slots",
    "render_json",
    "replay_witness",
    "retired_outside",
    "render_sarif",
    "render_text",
    "roundtrips",
    "schedule_step",
    "stream_tag_sets",
    "unreachable_retirements",
    "workload_bounds",
    "worst_severity",
]
