"""Static analyzer for triggered-assembly programs and fabrics.

Three layers:

* :mod:`repro.analyze.abstract` — exhaustive reachability over the
  finite predicate-vector state space, with queues kept abstract;
* :mod:`repro.analyze.lints` — program-level rules (unreachable and
  unsatisfiable triggers, shadowed and overlapping triggers, redundant
  predicate literals, speculation-window dequeues);
* :mod:`repro.analyze.fabric` — system-level rules over the channel
  wiring (tag mismatches through ports, capacity-cycle deadlock risk).

``python -m repro.analyze`` is the command-line front end;
:mod:`repro.analyze.crossval` ties analyzer verdicts to fuzzer runs.
"""

from repro.analyze.abstract import Reachability, explore
from repro.analyze.crossval import (
    reachable_slots,
    retired_outside,
    stream_tag_sets,
    unreachable_retirements,
)
from repro.analyze.fabric import analyze_system
from repro.analyze.findings import (
    Finding,
    Severity,
    count_by_severity,
    render_json,
    render_sarif,
    render_text,
    worst_severity,
)
from repro.analyze.lints import analyze_program

__all__ = [
    "Finding",
    "Reachability",
    "Severity",
    "analyze_program",
    "analyze_system",
    "count_by_severity",
    "explore",
    "reachable_slots",
    "render_json",
    "retired_outside",
    "render_sarif",
    "render_text",
    "stream_tag_sets",
    "unreachable_retirements",
    "worst_severity",
]
