"""Abstract interpretation over the predicate-vector lattice.

The triggered-control state of one PE is finite: with ``NPreds = 8``
there are at most 256 predicate vectors, and the only architectural
events that change them are issue-time :class:`PredUpdate` masks and
datapath writes to a single predicate bit.  Queue contents, by contrast,
depend on the rest of the fabric, so this interpreter keeps queues
*abstract*: each input queue may be empty or may hold any tag from a
per-queue possible-tag set (all tags when the caller has no wiring
knowledge).

From those two choices the interpreter computes, exactly, the set of
reachable predicate states and — for every instruction slot — the states
in which its trigger can be satisfied.  The walk mirrors
:meth:`repro.arch.scheduler.Scheduler.evaluate` priority semantics:

* an instruction whose guard matches but which has *queue conditions*
  (required input queues, tag checks, or an output queue needing space)
  **may** fire — the walk records it and continues, because the queues
  may equally not cooperate this cycle;
* an instruction whose guard matches and which has **no** queue
  conditions *definitely* fires, so the walk stops: no lower-priority
  slot can ever fire from this predicate state.

The result over-approximates every runtime (functional or pipelined,
with or without speculation): predicate hazards and forbidden cycles
only ever *suppress* firings, never add them, so a slot the interpreter
proves unreachable can never retire.  ``repro.verify`` leans on exactly
that direction when it cross-validates analyzer verdicts against fuzzer
runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.params import ArchParams, DEFAULT_PARAMS

#: ``input_tags`` maps input-queue index -> tags that may ever appear on
#: that queue.  A queue absent from the map may carry any tag; a queue
#: mapped to an empty set can never hold data at all.
TagSets = dict[int, frozenset[int]]


@dataclass
class Reachability:
    """Everything the reachability pass learned about one program."""

    #: Reachable predicate vectors (always includes the initial state).
    states: set[int] = field(default_factory=set)
    #: slot -> predicate states in which the slot's trigger can be
    #: satisfied (slots absent from the map can never fire).
    fire_states: dict[int, set[int]] = field(default_factory=dict)
    #: slot -> successor predicate states produced by firing it there.
    successors: dict[int, set[int]] = field(default_factory=dict)

    @property
    def reachable_slots(self) -> frozenset[int]:
        return frozenset(self.fire_states)

    def unreachable_slots(self, instructions: list[Instruction]) -> list[int]:
        """Valid slots whose triggers can never be satisfied."""
        return [
            index for index, ins in enumerate(instructions)
            if ins.valid and index not in self.fire_states
        ]


def queue_conditions(ins: Instruction) -> bool:
    """Whether firing depends on queue state at all (may vs. will fire)."""
    return (
        bool(ins.required_input_queues)
        or bool(ins.trigger.tag_checks)
        or ins.output_queue is not None
    )


def tags_feasible(ins: Instruction, input_tags: TagSets | None,
                  num_tags: int) -> bool:
    """Whether the trigger's queue conditions can *ever* hold, given the
    per-queue possible-tag sets."""
    if input_tags is None:
        return True
    for queue in ins.required_input_queues:
        if queue in input_tags and not input_tags[queue]:
            return False     # the queue can never hold data
    for check in ins.trigger.tag_checks:
        possible = input_tags.get(check.queue)
        if possible is None:
            continue
        if check.negate:
            if not any(tag != check.tag for tag in possible):
                return False
        elif check.tag not in possible:
            return False
    return True


def fire_successors(state: int, ins: Instruction) -> list[int]:
    """Predicate states after ``ins`` issues (and retires) from ``state``.

    The issue-time :class:`PredUpdate` is deterministic; a datapath write
    to a predicate forks on both outcomes because queue values are
    abstract.  A halting instruction stops the PE: no successors.
    """
    if ins.dp.op.effects.halts:
        return []
    after = ins.dp.pred_update.apply(state)
    if ins.dp.writes_predicate:
        bit = 1 << ins.dp.dst.index
        return [after | bit, after & ~bit]
    return [after]


def explore(
    instructions: list[Instruction],
    initial_predicates: int = 0,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
) -> Reachability:
    """Exhaustive reachability over the finite predicate-state space."""
    result = Reachability()
    # Precompute per-slot facts that do not depend on the predicate state.
    feasible = [
        ins.valid and tags_feasible(ins, input_tags, params.num_tags)
        for ins in instructions
    ]
    conditioned = [queue_conditions(ins) for ins in instructions]

    initial = initial_predicates & ((1 << params.num_preds) - 1)
    frontier = [initial]
    result.states.add(initial)
    while frontier:
        state = frontier.pop()
        for index, ins in enumerate(instructions):
            if not feasible[index]:
                continue
            if not ins.trigger.predicates_match(state):
                continue
            result.fire_states.setdefault(index, set()).add(state)
            nexts = result.successors.setdefault(index, set())
            for successor in fire_successors(state, ins):
                nexts.add(successor)
                if successor not in result.states:
                    result.states.add(successor)
                    frontier.append(successor)
            if not conditioned[index]:
                # Definitely fires: the priority walk never reaches any
                # lower slot from this predicate state.
                break
    return result
