"""Canonical state encoding for the bounded equivalence checker.

The checker (:mod:`repro.analyze.check`) explores the state space of one
PE under every bounded environment schedule.  A *node* of that space is
not just the PE's microarchitectural state: two paths that delivered
different numbers of input tokens, or committed different output
prefixes, must never be merged even if the PE itself looks identical —
their futures differ.  So a node key is the triple

``(pe_state, delivered, produced)``

where ``pe_state`` is the PE's own canonical snapshot (the
``snapshot_arch_state()`` seam on :class:`~repro.arch.FunctionalPE` and
:class:`~repro.pipeline.PipelinedPE` — registers, predicates,
scratchpad, queue contents and tags, in-flight pipeline entries with
relative sequence numbers, speculation records, predictor counters),
``delivered`` counts tokens fed to each input queue so far, and
``produced`` is the full committed output log per output queue.

Everything is plain nested tuples — hashable, comparable, and cheap to
build — so the BFS frontier is an ordinary dict keyed on nodes.
"""

from __future__ import annotations

import hashlib


def node_key(pe_state: tuple, delivered: tuple[int, ...],
             produced: tuple[tuple, ...]) -> tuple:
    """One canonical product-state node (hashable)."""
    return (pe_state, delivered, produced)


def node_digest(key: tuple) -> str:
    """Short stable digest of a node, for witness dumps and logs."""
    return hashlib.sha256(repr(key).encode()).hexdigest()[:12]


def describe_pe_state(pe_state: tuple) -> dict:
    """Human-readable view of a canonical PE snapshot.

    Works for both models: the functional snapshot is a 6-tuple, the
    pipelined one an 11-tuple (see the two ``snapshot_arch_state``
    implementations).  Used by witness reports, so a counterexample is
    reviewable without re-simulating.
    """
    common = {
        "regs": list(pe_state[0]),
        "preds": pe_state[1],
        "scratchpad": {address: word for address, word in pe_state[2]},
        "halted": pe_state[3],
    }
    if len(pe_state) == 6:
        _, _, _, _, inputs, outputs = pe_state
        common["inputs"] = [list(live) for live, _ in inputs]
        common["outputs"] = [list(live) for live, _ in outputs]
        return common
    (_, _, _, _, halt_pending, inputs, outputs, queue_state, pipe, specs,
     predictor) = pe_state
    common.update({
        "halt_pending": halt_pending,
        "inputs": [list(live) for live, _ in inputs],
        "outputs": [list(live) for live, _ in outputs],
        "pending_deqs": list(queue_state[0]),
        "sched_deqs": list(queue_state[1]),
        "pending_enqs": list(queue_state[2]),
        "pipe": [
            None if entry is None else {
                "slot": entry[0], "seq": entry[1], "captured": entry[2],
                "result_ready": entry[5],
            }
            for entry in pipe
        ],
        "speculations": [
            {"owner_seq": s[0], "pred_index": s[1], "predicted": s[2]}
            for s in specs
        ],
        "predictor": list(predictor[0]),
    })
    return common


def roundtrips(pe) -> bool:
    """Whether ``pe``'s canonical state survives a restore round trip.

    The checker's soundness rests on restore being exact; tests (and the
    paranoid) can assert this on any reachable state.
    """
    state = pe.snapshot_arch_state()
    pe.restore_arch_state(state)
    return pe.snapshot_arch_state() == state
