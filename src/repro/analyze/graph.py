"""Firing-transition dependence graphs and cycle-mean analysis.

The static performance analyzer (:mod:`repro.analyze.perf`) reduces
"how fast can this program run on this pipeline?" to a cycle-mean
problem over a small directed graph:

* **nodes** are instruction slots the reachability pass
  (:func:`repro.analyze.abstract.explore`) proves can fire;
* **edges** connect consecutive-firing pairs — slot ``b`` can be the
  next firing after slot ``a`` when some predicate successor state of
  ``a`` satisfies ``b``'s trigger under priority semantics;
* **weights** bound the issue interval between the two firings under
  one :class:`~repro.pipeline.config.PipelineConfig`.

Two weightings share the graph structure:

``bound="lower"``
    Every weight is a *proved* minimum interval, so the minimum cycle
    mean (Karp) lower-bounds the steady-state issue interval — and CPI,
    since at most one instruction issues (and retires) per cycle.  Only
    three mechanisms are counted, each derived from the simulator's
    phase ordering: consecutive issues are one cycle apart; a datapath
    predicate write without +P is pending from issue to retirement, so
    a watcher of that bit waits exactly the pipeline depth; with +P a
    pre-retirement side effect (a dequeue) is forbidden while the
    writer's speculation is unresolved, which lasts until the writer's
    result stage computes.  The speculation weight is applied only when
    no predicate writer can refire inside the result window (checked by
    edge-count distances), because a writer issuing under an exhausted
    speculation depth does not predict and its dependents can slip in
    a cycle early.

``bound="upper"``
    Weights are generous worst cases per mechanism (misprediction
    flushes, register RAW capture stalls, conservative queue-status
    serialization), so the *maximum* cycle mean tracks the worst
    sustained interval the program's own structure can impose.  The
    environment's contribution (queue starvation, memory round trips)
    is layered on top by :mod:`repro.analyze.perf`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction

from repro.analyze.abstract import Reachability
from repro.isa.instruction import DestinationType, Instruction, OperandType
from repro.pipeline.config import PipelineConfig, QueuePolicy

#: Edge kinds, used by the finding rules to attribute a bound to a
#: mechanism (``perf.py`` recomputes cycle means with one kind relaxed
#: to decide whether that mechanism is what binds the bound).
FIRING = "firing"            # plain consecutive issue, weight 1
PREDICATE = "predicate"      # non-+P datapath predicate write -> watcher
SPECULATION = "speculation"  # +P speculation window -> forbidden dequeue
RAW = "raw"                  # register read-after-write capture stall
QUEUE_STATUS = "queue-status"  # conservative in-flight queue accounting


@dataclass(frozen=True)
class Edge:
    """One weighted consecutive-firing edge."""

    src: int
    dst: int
    weight: float
    kind: str = FIRING


@dataclass
class FiringGraph:
    """Weighted firing-transition graph for one program on one config."""

    nodes: list[int] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)

    def successors(self) -> dict[int, list[Edge]]:
        out: dict[int, list[Edge]] = {node: [] for node in self.nodes}
        for edge in self.edges:
            out[edge.src].append(edge)
        return out

    def min_cycle_mean(self) -> float | None:
        """Karp minimum cycle mean, or None when the graph is acyclic."""
        return cycle_mean(self.nodes, self.edges, maximize=False)

    def max_cycle_mean(self) -> float | None:
        """Maximum cycle mean (Karp on negated weights)."""
        return cycle_mean(self.nodes, self.edges, maximize=True)

    def relaxed(self, kind: str) -> "FiringGraph":
        """The same graph with every ``kind`` edge's weight cut to 1.

        Comparing cycle means before and after tells whether that edge
        class is what binds the bound (the edge itself must stay — the
        firing order it records is real either way).
        """
        return FiringGraph(
            nodes=list(self.nodes),
            edges=[
                Edge(e.src, e.dst, 1.0, e.kind) if e.kind == kind else e
                for e in self.edges
            ],
        )


# ----------------------------------------------------------------------
# Cycle-mean analysis (Karp 1978)
# ----------------------------------------------------------------------

def cycle_mean(
    nodes: list[int], edges: list[Edge], maximize: bool = False
) -> float | None:
    """Minimum (or maximum) mean weight over all directed cycles.

    Karp's theorem: with ``d_k(v)`` the extremal weight of a *k*-edge
    walk ending at ``v`` (from any start, the multi-source variant),
    the minimum cycle mean is ``min_v max_k (d_n(v) - d_k(v))/(n-k)``.
    Weights are turned into exact fractions so ties (every weight here
    is a small rational) never wobble on float rounding.
    """
    if not nodes or not edges:
        return None
    index = {node: i for i, node in enumerate(nodes)}
    adj: list[list[tuple[int, Fraction]]] = [[] for _ in nodes]
    sign = -1 if maximize else 1
    for edge in edges:
        adj[index[edge.src]].append(
            (index[edge.dst], sign * Fraction(edge.weight).limit_denominator()))
    n = len(nodes)
    inf = None
    # d[k][v]: min weight of a k-edge walk ending at v (None = no walk).
    prev: list[Fraction | None] = [Fraction(0)] * n
    table: list[list[Fraction | None]] = [prev]
    for _ in range(n):
        cur: list[Fraction | None] = [inf] * n
        for u in range(n):
            du = prev[u]
            if du is inf:
                continue
            for v, w in adj[u]:
                cand = du + w
                if cur[v] is inf or cand < cur[v]:
                    cur[v] = cand
        table.append(cur)
        prev = cur
    best: Fraction | None = None
    final = table[n]
    for v in range(n):
        dn = final[v]
        if dn is inf:
            continue
        worst: Fraction | None = None
        for k in range(n):
            dk = table[k][v]
            if dk is inf:
                continue
            mean = (dn - dk) / (n - k)
            if worst is None or mean > worst:
                worst = mean
        if worst is not None and (best is None or worst < best):
            best = worst
    if best is None:
        return None
    return float(sign * best)


# ----------------------------------------------------------------------
# Graph construction
# ----------------------------------------------------------------------

def _consecutive_pairs(
    instructions: list[Instruction], reach: Reachability
) -> list[tuple[int, int]]:
    """(a, b) pairs where b can be the next firing after a.

    ``reach.successors[a]`` holds every predicate state reachable right
    after ``a`` commits (both outcomes of a datapath predicate write are
    forked, so states where the write is still in flight are covered
    too); ``reach.fire_states[b]`` holds the states in which ``b`` may
    fire under priority semantics.  Any overlap makes the pair feasible.
    """
    pairs = []
    for a, after in reach.successors.items():
        for b, when in reach.fire_states.items():
            if after & when:
                pairs.append((a, b))
    return pairs


def _writer_gap_ok(
    pairs: list[tuple[int, int]], writers: set[int], window: int
) -> bool:
    """Whether every firing path between predicate writers spans more
    than ``window`` firings.

    Each firing takes at least one cycle, so a writer-to-writer edge
    distance above the speculation window proves every writer issues
    with the previous speculation already resolved — the precondition
    for charging the full speculation-serialization weight on the lower
    bound (an unpredicted write lets a forbidden dequeue slip in up to
    a cycle earlier).
    """
    if window <= 1 or not writers:
        return True
    succ: dict[int, list[int]] = {}
    for a, b in pairs:
        succ.setdefault(a, []).append(b)
    for start in writers:
        # BFS over edge counts from just after `start` fires.
        seen = {start: 0}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            hops = seen[node]
            if hops >= window:
                continue
            for nxt in succ.get(node, ()):
                if nxt in writers and 0 < hops + 1 <= window - 1:
                    return False
                if nxt not in seen:
                    seen[nxt] = hops + 1
                    frontier.append(nxt)
    return True


def build_firing_graph(
    instructions: list[Instruction],
    reach: Reachability,
    config: PipelineConfig,
    bound: str = "lower",
    speculation_pairs: set[tuple[int, int]] | None = None,
) -> FiringGraph:
    """The weighted firing-transition graph for one (program, config).

    ``bound`` selects the proved-minimum or worst-case weighting (see
    the module docstring).  ``speculation_pairs`` narrows which
    (writer, dequeuer) pairs carry speculation weights to the lint's
    over-approximation (:func:`repro.analyze.lints.speculation_pairs`);
    when None, every writer->dequeuer pair is considered.
    """
    if bound not in ("lower", "upper"):
        raise ValueError(f"bound must be 'lower' or 'upper', not {bound!r}")
    pairs = _consecutive_pairs(instructions, reach)
    depth = config.depth
    writers = {
        slot for slot in reach.fire_states
        if instructions[slot].dp.writes_predicate
    }
    spec_sound = True
    if bound == "lower" and config.predicate_prediction and writers:
        window = max(
            config.result_stage(instructions[w].dp.op.late_result)
            for w in writers
        )
        spec_sound = _writer_gap_ok(pairs, writers, window)

    edges = []
    for a, b in pairs:
        a_ins, b_ins = instructions[a], instructions[b]
        weight, kind = 1.0, FIRING
        writes = a_ins.dp.writes_predicate
        result_stage = config.result_stage(a_ins.dp.op.late_result)
        if writes and not config.predicate_prediction:
            bit = 1 << a_ins.dp.dst.index
            if (b_ins.trigger.watched_predicates & bit) or bound == "upper":
                # Pending from issue to retirement: exactly `depth`.  For
                # the upper bound even a non-watcher pays it — a
                # *higher-priority* watcher can hazard-stall the whole
                # scheduler walk.
                weight, kind = float(depth), PREDICATE
        elif writes and config.predicate_prediction:
            if bound == "lower":
                if (
                    spec_sound
                    and b_ins.dp.has_side_effects_before_retire
                    and (speculation_pairs is None
                         or (a, b) in speculation_pairs)
                ):
                    weight = float(max(1, result_stage))
                    kind = SPECULATION
            else:
                # Worst case: the prediction is wrong every traversal —
                # detect at the result stage, flush, reissue the path.
                weight = float(1 + depth + result_stage)
                kind = SPECULATION
        if bound == "upper":
            if (a_ins.dp.dst.kind is DestinationType.REG
                    and any(s.kind is OperandType.REG
                            and s.index == a_ins.dp.dst.index
                            for s in b_ins.dp.srcs)
                    and weight < 1.0 + result_stage):
                weight, kind = 1.0 + result_stage, RAW
            if config.queue_policy is QueuePolicy.CONSERVATIVE:
                deq = set(a_ins.dp.deq)
                shared = bool(deq & set(b_ins.required_input_queues)) or (
                    a_ins.output_queue is not None
                    and a_ins.output_queue == b_ins.output_queue
                )
                # In-flight dequeues read as empty (and enqueues as
                # full) until the owner retires.
                if shared and weight < depth:
                    weight, kind = float(depth), QUEUE_STATUS
        edges.append(Edge(a, b, weight, kind))
    return FiringGraph(nodes=sorted(reach.fire_states), edges=edges)
