"""Counterexample traces for the bounded equivalence checker.

A :class:`Witness` is one concrete environment schedule under which a
pipelined configuration diverges from the golden model: for each cycle,
how many tokens the environment delivered to each input queue before
the step and how many entries it drained from each output queue after
the commit.  Everything else about the run is deterministic, so the
schedule alone (plus the case and configuration) replays the
divergence.

Witnesses are JSON-able (they ride inside corpus case files under a
``"witness"`` key) and replay through the *fuzzer's* harness — see
:func:`repro.verify.harness.check_witness` — so a checker counterexample
is validated by an independent implementation of the run loop, and the
shrinker can minimize the case while the checker re-derives a fresh
schedule for each reduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Witness:
    """One divergence-reproducing environment schedule."""

    kind: str                  # "state" | "output" | "hang" | "crash"
    config: str                # pipeline configuration name
    queue_capacity: int        # architectural queue depth of the run
    schedule: list[dict] = field(default_factory=list)
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "config": self.config,
            "queue_capacity": self.queue_capacity,
            "schedule": self.schedule,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Witness":
        return cls(
            kind=data["kind"],
            config=data["config"],
            queue_capacity=int(data["queue_capacity"]),
            schedule=[_normalize_step(step) for step in data["schedule"]],
            detail=data.get("detail", ""),
        )

    def cycles(self) -> int:
        return len(self.schedule)


def _normalize_step(step: dict) -> dict:
    """JSON round trip turns int keys into strings; accept both."""
    return {
        phase: {int(queue): int(count)
                for queue, count in (step.get(phase) or {}).items()}
        for phase in ("deliver", "drain")
    }


def schedule_step(deliver: tuple[int, ...], drain: tuple[int, ...]) -> dict:
    """One sparse schedule entry from per-queue action tuples."""
    return {
        "deliver": {q: k for q, k in enumerate(deliver) if k},
        "drain": {q: k for q, k in enumerate(drain) if k},
    }


def replay_witness(case: dict, witness: Witness, params=None) -> dict:
    """Replay a witness through the fuzzer harness.

    Returns the harness result dict; ``result["reproduced"]`` tells
    whether the divergence still manifests.  Thin wrapper so callers
    holding a witness need not know the harness module layout.
    """
    from repro.params import DEFAULT_PARAMS
    from repro.verify.harness import check_witness

    return check_witness(case, witness, params or DEFAULT_PARAMS)
