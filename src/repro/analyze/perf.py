"""Static CPI / throughput bounds per (program, pipeline config).

For every workload system and every pipeline configuration this module
derives a **lower and upper bound on the worker PE's CPI without
simulation**, by cycle-mean analysis over the firing-transition graph
(:mod:`repro.analyze.graph`) plus a compositional model of the fabric
environment (queue channels, memory ports, producer PEs).

The two bounds have different contracts:

* the **lower bound** is proved: every edge weight in the ``lower``
  graph is a minimum issue interval derived from the simulator's phase
  ordering, so the minimum cycle mean under-approximates steady-state
  CPI.  This is the side the DSE pruning oracle (:mod:`repro.dse.prune`)
  relies on — pruning is only sound because a design point's *best
  possible* metrics come from a *lower* bound on its CPI.
* the **upper bound** is engineering-grade: worst-case local weights
  (mispredict flushes, RAW capture stalls, conservative queue status)
  plus generous environment slack (memory round trips, producer-PE
  periods).  It is validated empirically — CI checks that the bounds
  bracket the simulator on Table 3 workloads across all 48 configs —
  and is deliberately loose rather than ever tight-but-wrong.

Three finding rules surface what binds a bound, through the ordinary
findings/SARIF pipeline (``python -m repro.analyze --perf``):

``partition-bound``
    Deep partitions serialize predicate writer->watcher pairs; the CPI
    floor scales with pipeline depth.
``speculation-serialized``
    Under +P, dequeues are forbidden inside speculation windows; the
    floor scales with the writer's result stage.
``throughput-capped-by-queue-depth``
    A memory round-trip loop has fewer buffer slots than its latency
    needs; token circulation, not the program, caps throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analyze.abstract import TagSets, explore
from repro.analyze.fabric import _Wiring, input_tag_map
from repro.analyze.findings import Finding, Severity, attach_source
from repro.analyze.graph import (
    PREDICATE,
    SPECULATION,
    FiringGraph,
    build_firing_graph,
)
from repro.analyze.lints import speculation_pairs
from repro.asm.program import Program
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig, all_configs

#: Flat startup/drain allowance added to the upper bound: a finite run
#: pays pipeline fill and drain once, amortized over many retirements.
_TRANSIENT_SLACK = 2.0

#: One-cycle channel traversal on each hop of a memory round trip
#: (request commit -> port -> response commit), see ``repro.arch.queue``.
_PORT_HOPS = 2


@dataclass(frozen=True)
class PerfBounds:
    """Static CPI bounds for one PE under one pipeline configuration."""

    pe: str
    config: str
    lower: float          # proved steady-state CPI floor
    upper: float          # validated worst-case CPI ceiling
    intra_lower: float    # program-structure component of `lower`
    intra_upper: float    # program-structure component of `upper`
    env_slack: float      # environment (channel/port) share of `upper`
    channel_bound: float  # worst token-circulation period over channels
    workload: str | None = None

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def brackets(self, measured: float, slack: float = 1e-9) -> bool:
        """Whether a measured CPI falls inside [lower, upper]."""
        return self.lower - slack <= measured <= self.upper + slack

    def row(self) -> dict:
        return {
            "workload": self.workload, "pe": self.pe, "config": self.config,
            "lower": round(self.lower, 4), "upper": round(self.upper, 4),
            "intra_lower": round(self.intra_lower, 4),
            "env_slack": round(self.env_slack, 4),
            "channel_bound": round(self.channel_bound, 4),
        }


# ----------------------------------------------------------------------
# Program-level bounds (no environment)
# ----------------------------------------------------------------------

def program_graphs(
    program: Program,
    config: PipelineConfig,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
) -> tuple[FiringGraph, FiringGraph]:
    """The (lower, upper) weighted firing graphs for one program."""
    reach = explore(program.instructions, program.initial_predicates,
                    params, input_tags)
    spec = speculation_pairs(program, params, input_tags)
    lower = build_firing_graph(program.instructions, reach, config,
                               bound="lower", speculation_pairs=spec)
    upper = build_firing_graph(program.instructions, reach, config,
                               bound="upper")
    return lower, upper


def _intra_bounds(lower: FiringGraph, upper: FiringGraph) -> tuple[float, float]:
    lo = lower.min_cycle_mean()
    lo = 1.0 if lo is None else max(1.0, lo)
    up = upper.max_cycle_mean()
    if up is None:
        # Acyclic program: no sustained rate to bound; the worst single
        # interval is the only structural cost.
        up = max((e.weight for e in upper.edges), default=1.0)
    return lo, max(up, lo)


def program_bounds(
    program: Program,
    config: PipelineConfig,
    params: ArchParams = DEFAULT_PARAMS,
    input_tags: TagSets | None = None,
    pe: str | None = None,
) -> PerfBounds:
    """Bounds for a bare program under a **cooperative environment**
    (inputs always available, outputs never full).

    The lower bound is unconditional; the upper bound only holds when
    nothing outside the PE stalls it — analyze a built system
    (:class:`PerfAnalyzer`) to account for channels and memory.
    """
    lower, upper = program_graphs(program, config, params, input_tags)
    lo, up = _intra_bounds(lower, upper)
    return PerfBounds(
        pe=pe or program.name or "<program>", config=config.name,
        lower=lo, upper=up + _TRANSIENT_SLACK + config.depth,
        intra_lower=lo, intra_upper=up, env_slack=0.0, channel_bound=0.0,
    )


# ----------------------------------------------------------------------
# System-level bounds (fabric environment model)
# ----------------------------------------------------------------------

class PerfAnalyzer:
    """Bounds over a built :class:`~repro.fabric.system.System`.

    Reachability, speculation pairs and wiring are resolved once per
    PE; per-config weighting is then cheap, so sweeping all 48 configs
    costs one graph reweighting each — the property that makes the DSE
    pruning oracle affordable.
    """

    def __init__(self, system, params: ArchParams | None = None,
                 workload: str | None = None) -> None:
        self.system = system
        self.workload = workload
        self.wiring = _Wiring(system)
        self.params = params if params is not None else (
            system.pes[0].params if system.pes else DEFAULT_PARAMS)
        self._static: dict[str, tuple] = {}       # pe -> (program, tags, reach, spec)
        self._graphs: dict[tuple[str, str], tuple[FiringGraph, FiringGraph]] = {}
        self._period: dict[tuple[str, str], float] = {}

    # -- per-PE static facts ------------------------------------------

    def _facts(self, pe_name: str):
        cached = self._static.get(pe_name)
        if cached is None:
            program = self.wiring.programs[pe_name]
            tags = input_tag_map(self.wiring, pe_name)
            reach = explore(program.instructions, program.initial_predicates,
                            self.params, tags)
            spec = speculation_pairs(program, self.params, tags)
            cached = (program, tags, reach, spec)
            self._static[pe_name] = cached
        return cached

    def graphs(self, pe_name: str, config: PipelineConfig
               ) -> tuple[FiringGraph, FiringGraph]:
        key = (pe_name, config.name)
        cached = self._graphs.get(key)
        if cached is None:
            program, _tags, reach, spec = self._facts(pe_name)
            cached = (
                build_firing_graph(program.instructions, reach, config,
                                   bound="lower", speculation_pairs=spec),
                build_firing_graph(program.instructions, reach, config,
                                   bound="upper"),
            )
            self._graphs[key] = cached
        return cached

    # -- environment model --------------------------------------------

    def _round_trip(self, config: PipelineConfig) -> float:
        """Worst memory round trip: enqueue commits at retirement, then
        one hop to the port, the access latency, one hop back."""
        return config.depth + self.system.memory_latency + _PORT_HOPS

    def _cycle_slots(self, pe_name: str, config: PipelineConfig) -> int:
        """Slots on a firing-graph cycle — a steady-state producer fires
        only these, so they bound its firings-per-enqueue factor."""
        lower_graph, _ = self.graphs(pe_name, config)
        succ = {node: [e.dst for e in edges]
                for node, edges in lower_graph.successors().items()}
        on_cycle = 0
        for start in lower_graph.nodes:
            frontier = list(succ.get(start, ()))
            seen = set()
            while frontier:
                node = frontier.pop()
                if node == start:
                    on_cycle += 1
                    break
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(succ.get(node, ()))
        return on_cycle if on_cycle else len(lower_graph.nodes)

    def _token_period(self, producer: str, config: PipelineConfig,
                      stack: tuple[str, ...]) -> float:
        """Worst sustained interval between a producer PE's tokens: its
        per-firing period times its firings per enqueue (at most the
        slots on its steady-state firing cycles)."""
        slots = self._cycle_slots(producer, config)
        return self._period_ub(producer, config, stack) * max(1, slots)

    def _env_slack(self, pe_name: str, config: PipelineConfig,
                   stack: tuple[str, ...]) -> tuple[float, float]:
        """(per-firing environment wait allowance, worst channel token
        bound).

        Memory round trips add up — a firing can serially chase through
        every port-fed channel — but producer-PE terms compose by
        ``max``: in steady state the slowest upstream token rate is what
        throttles the consumer, rates do not stack.
        """
        pe = self.system.pe(pe_name)
        port_slack = 0.0
        producer_term = 0.0
        channel_bound = 0.0
        for queue in pe.inputs:
            info = self.wiring.by_queue.get(id(queue))
            if info is None:
                continue
            if info.port_producer is not None:
                trip = self._round_trip(config)
                port_slack += trip
                request = info.feeds_from
                buffering = queue.capacity + self.system.memory_latency
                if request is not None:
                    buffering = min(queue.capacity, request.capacity) \
                        + self.system.memory_latency
                channel_bound = max(channel_bound, trip / max(1, buffering))
            elif info.producer is not None and info.producer[0] != pe_name:
                producer_term = max(producer_term, self._token_period(
                    info.producer[0], config, stack))
        # A write port drains only when both its channels hold data: an
        # output to such a port can back up while the sibling channel
        # (possibly another PE's) starves.
        for port in self.system.write_ports:
            channels = [c for c in (port.address, port.data) if c is not None]
            producers = set()
            for channel in channels:
                info = self.wiring.by_queue.get(id(channel))
                if info is not None and info.producer is not None:
                    producers.add(info.producer[0])
            if pe_name not in producers:
                continue
            for other in producers - {pe_name}:
                producer_term = max(producer_term, self._token_period(
                    other, config, stack))
        return port_slack + producer_term, channel_bound

    def _period_ub(self, pe_name: str, config: PipelineConfig,
                   stack: tuple[str, ...]) -> float:
        """Upper bound on a PE's sustained inter-firing period."""
        key = (pe_name, config.name)
        cached = self._period.get(key)
        if cached is not None:
            return cached
        if pe_name in stack:
            # PE channel cycle: break it with a generous constant rather
            # than recursing (the capacity-cycle lint reports the risk).
            return self._round_trip(config) + config.depth
        _lo, up = _intra_bounds(*self.graphs(pe_name, config))
        slack, _ = self._env_slack(pe_name, config, stack + (pe_name,))
        period = up + slack + config.depth
        self._period[key] = period
        return period

    # -- public API ----------------------------------------------------

    def bounds(self, pe_name: str, config: PipelineConfig) -> PerfBounds:
        lower_graph, upper_graph = self.graphs(pe_name, config)
        lo, up = _intra_bounds(lower_graph, upper_graph)
        slack, channel_bound = self._env_slack(pe_name, config, (pe_name,))
        return PerfBounds(
            pe=pe_name, config=config.name,
            lower=lo,
            upper=up + slack + _TRANSIENT_SLACK + config.depth,
            intra_lower=lo, intra_upper=up,
            env_slack=slack, channel_bound=channel_bound,
            workload=self.workload,
        )

    def findings(self, pe_name: str,
                 configs: list[PipelineConfig] | None = None) -> list[Finding]:
        """The three perf rules for one PE, aggregated across configs."""
        if configs is None:
            configs = all_configs(include_padded=True)
        program, _tags, _reach, _spec = self._facts(pe_name)
        partition: list[tuple[float, float, PipelineConfig, int | None]] = []
        serialized: list[tuple[float, float, PipelineConfig, int | None]] = []
        capped: list[tuple[float, float, PipelineConfig]] = []
        for config in configs:
            lower_graph, _ = self.graphs(pe_name, config)
            b = self.bounds(pe_name, config)
            for kind, sink in ((PREDICATE, partition),
                               (SPECULATION, serialized)):
                binding = [e for e in lower_graph.edges
                           if e.kind == kind and e.weight > 1]
                if not binding:
                    continue
                relaxed = lower_graph.relaxed(kind).min_cycle_mean()
                relaxed = 1.0 if relaxed is None else max(1.0, relaxed)
                if b.intra_lower > relaxed + 1e-9:
                    sink.append((b.intra_lower, relaxed, config,
                                 binding[0].src))
            if b.channel_bound > b.intra_lower + 1e-9:
                capped.append((b.channel_bound, b.intra_lower, config))

        findings = []
        name = f"{self.workload}/{pe_name}" if self.workload else pe_name
        if partition:
            worst, relaxed, config, slot = max(
                partition, key=lambda entry: entry[:2])
            ins = program.instructions[slot] if slot is not None else None
            findings.append(attach_source(Finding(
                rule="partition-bound", severity=Severity.NOTE,
                message=(
                    f"pipeline depth serializes predicate writer->watcher "
                    f"pairs in {len(partition)} of {len(configs)} configs; "
                    f"worst {config.name}: static CPI floor {worst:.2f} "
                    f"vs {relaxed:.2f} were predicates resolved in one "
                    f"cycle"),
                pe=name, slot=slot,
                line=ins.line if ins else None,
                column=ins.column if ins else None,
            ), program))
        if serialized:
            worst, relaxed, config, slot = max(
                serialized, key=lambda entry: entry[:2])
            ins = program.instructions[slot] if slot is not None else None
            findings.append(attach_source(Finding(
                rule="speculation-serialized", severity=Severity.NOTE,
                message=(
                    f"+P speculation windows forbid dequeues in "
                    f"{len(serialized)} of {len(configs)} configs; worst "
                    f"{config.name}: static CPI floor {worst:.2f} vs "
                    f"{relaxed:.2f} without the serialization"),
                pe=name, slot=slot,
                line=ins.line if ins else None,
                column=ins.column if ins else None,
            ), program))
        if capped:
            worst, floor, config = max(capped, key=lambda entry: entry[:2])
            findings.append(Finding(
                rule="throughput-capped-by-queue-depth",
                severity=Severity.NOTE,
                message=(
                    f"memory round-trip token circulation caps throughput "
                    f"in {len(capped)} of {len(configs)} configs; worst "
                    f"{config.name}: {worst:.2f} cycles/token over the "
                    f"channel buffering vs program floor {floor:.2f} — "
                    f"deeper queues would lift the cap"),
                pe=name,
            ))
        return findings


# ----------------------------------------------------------------------
# Workload-level conveniences
# ----------------------------------------------------------------------

def workload_analyzer(
    name: str,
    params: ArchParams = DEFAULT_PARAMS,
    scale: int | None = None,
    seed: int = 0,
) -> tuple[PerfAnalyzer, str]:
    """(analyzer, worker PE name) for one freshly built Table 3 workload."""
    from repro.workloads.suite import get_workload

    workload = get_workload(name, params)
    scale = workload.default_scale if scale is None else scale
    system = workload.build(workload.default_pe_factory(), scale, seed)
    analyzer = PerfAnalyzer(system, params=workload.params, workload=name)
    return analyzer, workload.worker_name


def workload_bounds(
    name: str,
    config: PipelineConfig,
    params: ArchParams = DEFAULT_PARAMS,
    scale: int | None = None,
    seed: int = 0,
) -> PerfBounds:
    """Static bounds for one workload's worker under one config."""
    analyzer, worker = workload_analyzer(name, params, scale, seed)
    return analyzer.bounds(worker, config)


def config_lower_bounds(
    configs: list[PipelineConfig],
    params: ArchParams = DEFAULT_PARAMS,
    workloads: list[str] | None = None,
    scale: int = 8,
    seed: int = 0,
) -> dict[str, float]:
    """Workload-average CPI lower bound per config — the pruning oracle.

    The mean of per-workload lower bounds is a lower bound of the mean
    measured CPI (the quantity :class:`repro.dse.cpi.CpiTable` records),
    so :mod:`repro.dse.prune` may project a config's best-case design
    points from these numbers without ever simulating.
    """
    from repro.workloads.suite import WORKLOADS

    names = workloads if workloads is not None else WORKLOADS()
    analyzers = [workload_analyzer(name, params, scale, seed)
                 for name in names]
    bounds: dict[str, float] = {}
    for config in configs:
        total = 0.0
        for analyzer, worker in analyzers:
            lower_graph, upper_graph = analyzer.graphs(worker, config)
            lo, _up = _intra_bounds(lower_graph, upper_graph)
            total += lo
        bounds[config.name] = total / max(1, len(analyzers))
    return bounds


# ----------------------------------------------------------------------
# Validation against the simulator
# ----------------------------------------------------------------------

def bracket_check(
    workloads: list[str] | None = None,
    configs: list[PipelineConfig] | None = None,
    params: ArchParams = DEFAULT_PARAMS,
    scale: int = 8,
    seed: int = 0,
) -> tuple[list[dict], list[Finding]]:
    """Simulate (workload x config) and check bounds bracket measured CPI.

    Returns the per-pair rows (bounds + measured, for reports and the
    EXPERIMENTS gap histogram) and a finding list — one
    ``perf-bound-violated`` **error** per pair whose measured CPI falls
    outside [lower, upper].  CI runs this as ``--perf --smoke``.
    """
    from repro.pipeline.core import PipelinedPE
    from repro.workloads.suite import WORKLOADS, run_workload

    names = workloads if workloads is not None else WORKLOADS()
    if configs is None:
        configs = all_configs(include_padded=True)
    rows: list[dict] = []
    findings: list[Finding] = []
    for name in names:
        analyzer, worker = workload_analyzer(name, params, scale, seed)
        for config in configs:
            bounds = analyzer.bounds(worker, config)
            run = run_workload(
                name,
                make_pe=lambda pe_name, c=config: PipelinedPE(
                    c, params, name=pe_name),
                scale=scale, seed=seed, params=params,
            )
            measured = run.worker_counters.cpi
            row = bounds.row()
            row["measured"] = round(measured, 4)
            row["bracketed"] = bounds.brackets(measured)
            rows.append(row)
            if not row["bracketed"]:
                findings.append(Finding(
                    rule="perf-bound-violated", severity=Severity.ERROR,
                    message=(
                        f"{config.name}: measured CPI {measured:.4f} "
                        f"outside static bounds [{bounds.lower:.4f}, "
                        f"{bounds.upper:.4f}]"),
                    pe=f"{name}/{worker}",
                ))
    return rows, findings
