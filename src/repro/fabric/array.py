"""Rectangular PE arrays with nearest-neighbor channels.

The paper's FPGA prototype arranges PEs in small spatial arrays (up to
4x4 on the Zynq part) connected by point-to-point tagged channels.  This
module builds that topology: each PE dedicates one input and one output
queue per direction (N, E, S, W), neighbors share channels, and edge
queues remain free for memory ports or host I/O.

Direction-to-queue convention (both for inputs and outputs)::

    NORTH = queue 0      EAST = queue 1      SOUTH = queue 2      WEST = queue 3

so ``pe.outputs[EAST]`` of (r, c) is the same queue object as
``pe.inputs[WEST]`` of (r, c + 1).
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import ConfigError
from repro.fabric.system import System


class Direction(enum.IntEnum):
    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3

    @property
    def opposite(self) -> "Direction":
        return Direction((self + 2) % 4)


class PEArray:
    """A rows x cols mesh of PEs inside a :class:`System`."""

    def __init__(
        self,
        system: System,
        rows: int,
        cols: int,
        make_pe: Callable[[str], object],
        name: str = "pe",
    ) -> None:
        if rows < 1 or cols < 1:
            raise ConfigError("array dimensions must be at least 1x1")
        self.system = system
        self.rows = rows
        self.cols = cols
        self._grid = []
        for r in range(rows):
            row = []
            for c in range(cols):
                pe = make_pe(f"{name}_{r}_{c}")
                if len(pe.inputs) < 4 or len(pe.outputs) < 4:
                    raise ConfigError(
                        "mesh wiring needs at least four input and output queues"
                    )
                system.add_pe(pe)
                row.append(pe)
            self._grid.append(row)
        self._wire_mesh()

    def _wire_mesh(self) -> None:
        for r in range(self.rows):
            for c in range(self.cols):
                if c + 1 < self.cols:   # east-west pair
                    self.system.connect(
                        self._grid[r][c], Direction.EAST,
                        self._grid[r][c + 1], Direction.WEST,
                    )
                    self.system.connect(
                        self._grid[r][c + 1], Direction.WEST,
                        self._grid[r][c], Direction.EAST,
                    )
                if r + 1 < self.rows:   # north-south pair
                    self.system.connect(
                        self._grid[r][c], Direction.SOUTH,
                        self._grid[r + 1][c], Direction.NORTH,
                    )
                    self.system.connect(
                        self._grid[r + 1][c], Direction.NORTH,
                        self._grid[r][c], Direction.SOUTH,
                    )

    # ------------------------------------------------------------------

    def pe(self, row: int, col: int):
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ConfigError(f"({row}, {col}) outside the {self.rows}x{self.cols} array")
        return self._grid[row][col]

    def __iter__(self):
        for row in self._grid:
            yield from row

    def is_edge_direction(self, row: int, col: int, direction: Direction) -> bool:
        """Whether a direction points off the array (queue free for I/O)."""
        self.pe(row, col)
        return (
            (direction is Direction.NORTH and row == 0)
            or (direction is Direction.SOUTH and row == self.rows - 1)
            or (direction is Direction.WEST and col == 0)
            or (direction is Direction.EAST and col == self.cols - 1)
        )

    def attach_read_port(self, row: int, col: int, direction: Direction):
        """Turn an edge PE's free direction into a memory load endpoint.

        Requests leave on the direction's output queue; responses arrive
        on the same direction's input queue.
        """
        if not self.is_edge_direction(row, col, direction):
            raise ConfigError(
                f"({row}, {col}) {direction.name} faces a neighbor, not the edge"
            )
        return self.system.add_read_port(
            self.pe(row, col), request_out=int(direction), response_in=int(direction)
        )

    def attach_write_port(
        self,
        addr_row: int, addr_col: int, addr_direction: Direction,
        data_row: int, data_col: int, data_direction: Direction,
    ):
        """Attach a store endpoint fed by edge queues (possibly two PEs)."""
        for row, col, direction in (
            (addr_row, addr_col, addr_direction),
            (data_row, data_col, data_direction),
        ):
            if not self.is_edge_direction(row, col, direction):
                raise ConfigError(
                    f"({row}, {col}) {direction.name} faces a neighbor, not the edge"
                )
        return self.system.add_write_port(
            self.pe(addr_row, addr_col), int(addr_direction),
            self.pe(data_row, data_col), int(data_direction),
        )
