"""Spatial fabric: channels between PEs, memory endpoints, system loop."""

from repro.fabric.memory import Memory, MemoryReadPort, MemoryWritePort
from repro.fabric.lsq import LoadStoreQueue
from repro.fabric.system import System
from repro.fabric.array import PEArray, Direction

__all__ = [
    "Memory",
    "MemoryReadPort",
    "MemoryWritePort",
    "LoadStoreQueue",
    "System",
    "PEArray",
    "Direction",
]
