"""Multi-PE system: wiring, memory ports, and the cycle loop.

A :class:`System` owns a set of processing elements (functional or
pipelined — anything with the PE interface), a memory with read/write
ports, and the channel wiring between them.  A producer PE's output
queue and the consumer's input queue are the *same*
:class:`~repro.arch.queue.TaggedQueue` object; staged-enqueue commit
gives every channel a one-cycle traversal independent of step order.

The run loop plays the role of the paper's Linux driver + userspace
library: program the PEs, preload memory, run to completion, read back
performance counters from the designated worker PE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.queue import TaggedQueue
from repro.errors import (
    ConfigError,
    DeadlockError,
    SimulationError,
    attribute_error,
)
from repro.fabric.lsq import LoadStoreQueue
from repro.fabric.memory import Memory, MemoryReadPort, MemoryWritePort


@dataclass
class ChannelInfo:
    """One channel's endpoints, as tooling (the static analyzer) sees them.

    ``producer`` / ``consumer`` are ``(pe_name, queue_index)`` pairs when
    a PE drives or drains the channel; ``port_producer`` /
    ``port_consumer`` name a memory port or LSQ playing that role
    instead.  ``feeds_from`` links a response channel back to the request
    channel whose tags the port propagates (read ports and LSQ load
    paths echo the request tag on the response, Section 6), so tag-flow
    analysis can follow traffic through memory.
    """

    queue: TaggedQueue
    producer: tuple[str, int] | None = None
    consumer: tuple[str, int] | None = None
    port_producer: str | None = None
    port_consumer: str | None = None
    feeds_from: TaggedQueue | None = None


class System:
    """A small spatial array plus memory, as in the paper's 4x4-max testbed."""

    def __init__(self, memory_words: int = 1 << 16, memory_latency: int = 4) -> None:
        self.memory = Memory(memory_words)
        self.memory_latency = memory_latency
        self.pes: list = []
        self.read_ports: list[MemoryReadPort] = []
        self.write_ports: list[MemoryWritePort] = []
        self.lsqs: list[LoadStoreQueue] = []
        self.cycles = 0
        self._channels: list[TaggedQueue] | None = None   # cached wiring
        #: Optional per-cycle invariant checker (resilience layer); when
        #: set, :meth:`step` calls it at every cycle boundary.
        self.invariant_checker = None
        #: Optional telemetry sink (observability layer); when set,
        #: :meth:`step` samples fabric state at every cycle boundary.
        #: Attach via :meth:`repro.obs.events.Telemetry.attach_system`.
        self.telemetry = None
        #: Opt-in cycle-accounting audit: when enabled (see
        #: :meth:`enable_counter_checks`), :meth:`run` verifies every
        #: PE's ``PipelineCounters.check_consistency`` after completion,
        #: so accounting leaks fail loudly instead of skewing CPI stacks.
        self.counter_checks = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pe(self, pe) -> None:
        """Register a PE (functional or pipelined)."""
        if any(existing.name == pe.name for existing in self.pes):
            raise ConfigError(f"duplicate PE name {pe.name!r}")
        self.pes.append(pe)
        self._channels = None

    def _rewired(self, *pes) -> None:
        """Invalidate caches that depend on the current queue wiring."""
        self._channels = None
        for pe in pes:
            invalidate = getattr(pe, "invalidate_schedule_cache", None)
            if invalidate is not None:
                invalidate()

    def pe(self, name: str):
        """Look up a PE by name."""
        for pe in self.pes:
            if pe.name == name:
                return pe
        raise ConfigError(f"no PE named {name!r}")

    def connect(self, producer, out_index: int, consumer, in_index: int) -> TaggedQueue:
        """Wire producer output queue to consumer input queue (one channel)."""
        channel = TaggedQueue(
            producer.outputs[out_index].capacity,
            f"{producer.name}.o{out_index}->{consumer.name}.i{in_index}",
        )
        producer.outputs[out_index] = channel
        consumer.inputs[in_index] = channel
        self._rewired(producer, consumer)
        return channel

    def add_read_port(self, pe, request_out: int, response_in: int) -> MemoryReadPort:
        """Give a PE a load endpoint: addresses out, data back in."""
        port = MemoryReadPort(
            self.memory, self.memory_latency, f"rd<-{pe.name}.o{request_out}"
        )
        request = TaggedQueue(pe.outputs[request_out].capacity, f"{port.name}.req")
        response = TaggedQueue(pe.inputs[response_in].capacity, f"{port.name}.rsp")
        pe.outputs[request_out] = request
        pe.inputs[response_in] = response
        port.request = request
        port.response = response
        self.read_ports.append(port)
        self._rewired(pe)
        return port

    def add_write_port(self, addr_pe, addr_out: int, data_pe, data_out: int) -> MemoryWritePort:
        """Give PE(s) a store endpoint: an address channel and a data channel.

        The two channels may come from the same PE (it interleaves its own
        address/data traffic) or from two PEs (the ``stream`` pattern).
        """
        port = MemoryWritePort(self.memory, f"wr<-{addr_pe.name}/{data_pe.name}")
        address = TaggedQueue(addr_pe.outputs[addr_out].capacity, f"{port.name}.addr")
        data = TaggedQueue(data_pe.outputs[data_out].capacity, f"{port.name}.data")
        addr_pe.outputs[addr_out] = address
        data_pe.outputs[data_out] = data
        port.address = address
        port.data = data
        self.write_ports.append(port)
        self._rewired(addr_pe, data_pe)
        return port

    def add_load_store_queue(
        self,
        pe,
        load_request_out: int,
        load_response_in: int,
        store_address_out: int,
        store_data_out: int,
        store_buffer_entries: int = 4,
    ) -> LoadStoreQueue:
        """Give a PE a decoupled load-store queue (Section 6 extension).

        Replaces a (read port, write port) pair with one unit that keeps
        an in-order store buffer and forwards buffered stores to younger
        matching loads.
        """
        lsq = LoadStoreQueue(
            self.memory, self.memory_latency, store_buffer_entries,
            name=f"lsq<-{pe.name}",
        )
        capacity = pe.outputs[load_request_out].capacity
        lsq.load_request = TaggedQueue(capacity, f"{lsq.name}.ld.req")
        lsq.load_response = TaggedQueue(
            pe.inputs[load_response_in].capacity, f"{lsq.name}.ld.rsp")
        lsq.store_address = TaggedQueue(
            pe.outputs[store_address_out].capacity, f"{lsq.name}.st.addr")
        lsq.store_data = TaggedQueue(
            pe.outputs[store_data_out].capacity, f"{lsq.name}.st.data")
        pe.outputs[load_request_out] = lsq.load_request
        pe.inputs[load_response_in] = lsq.load_response
        pe.outputs[store_address_out] = lsq.store_address
        pe.outputs[store_data_out] = lsq.store_data
        self.lsqs.append(lsq)
        self._rewired(pe)
        return lsq

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def _all_channels(self) -> list[TaggedQueue]:
        """Every distinct channel in the system (cached; wiring methods
        invalidate).  Rebuilding this dict per cycle dominated the run
        loop's own overhead on multi-PE workloads."""
        if self._channels is not None:
            return self._channels
        seen: dict[int, TaggedQueue] = {}
        for pe in self.pes:
            for queue in list(pe.inputs) + list(pe.outputs):
                seen[id(queue)] = queue
        for port in self.read_ports:
            for queue in (port.request, port.response):
                if queue is not None:
                    seen[id(queue)] = queue
        for port in self.write_ports:
            for queue in (port.address, port.data):
                if queue is not None:
                    seen[id(queue)] = queue
        for lsq in self.lsqs:
            for queue in (lsq.load_request, lsq.load_response,
                          lsq.store_address, lsq.store_data):
                if queue is not None:
                    seen[id(queue)] = queue
        self._channels = list(seen.values())
        return self._channels

    def wiring(self) -> list[ChannelInfo]:
        """Structured channel inventory: every distinct queue with its
        producing and consuming endpoints resolved.

        This is the fabric-level input of :mod:`repro.analyze.fabric`:
        channel identity is queue object identity (``connect`` makes the
        producer's output queue and the consumer's input queue the same
        object), and memory ports are annotated with the request channel
        whose tags they propagate onto responses.
        """
        infos: dict[int, ChannelInfo] = {}

        def info(queue: TaggedQueue) -> ChannelInfo:
            return infos.setdefault(id(queue), ChannelInfo(queue=queue))

        for pe in self.pes:
            for index, queue in enumerate(pe.outputs):
                info(queue).producer = (pe.name, index)
            for index, queue in enumerate(pe.inputs):
                info(queue).consumer = (pe.name, index)
        for port in self.read_ports:
            if port.request is not None:
                info(port.request).port_consumer = port.name
            if port.response is not None:
                response = info(port.response)
                response.port_producer = port.name
                response.feeds_from = port.request
        for port in self.write_ports:
            for queue in (port.address, port.data):
                if queue is not None:
                    info(queue).port_consumer = port.name
        for lsq in self.lsqs:
            if lsq.load_request is not None:
                info(lsq.load_request).port_consumer = lsq.name
            if lsq.load_response is not None:
                response = info(lsq.load_response)
                response.port_producer = lsq.name
                response.feeds_from = lsq.load_request
            for queue in (lsq.store_address, lsq.store_data):
                if queue is not None:
                    info(queue).port_consumer = lsq.name
        return list(infos.values())

    @property
    def all_halted(self) -> bool:
        return all(pe.halted for pe in self.pes)

    def attach_invariant_checker(self, checker) -> None:
        """Enable opt-in per-cycle invariant checking (resilience layer)."""
        self.invariant_checker = checker

    def enable_counter_checks(self, enabled: bool = True) -> None:
        """Opt into end-of-run cycle-accounting verification.

        Like :meth:`attach_invariant_checker`, this is off by default;
        tests and campaigns that want accounting leaks to fail loudly
        flip it on, and :meth:`run` then calls every PE counter block's
        ``check_consistency`` once the run completes.
        """
        self.counter_checks = enabled

    def step(self) -> bool:
        """Advance the whole system one cycle; True if anything progressed."""
        progressed = False
        for pe in self.pes:
            try:
                if pe.step():
                    progressed = True
            except SimulationError as exc:
                raise attribute_error(exc, pe.name, self.cycles)
        for port in self.read_ports:
            busy_before = not port.idle
            port.step()
            if busy_before:
                progressed = True
        stores_before = sum(port.stores_accepted for port in self.write_ports)
        for port in self.write_ports:
            port.step()
        if sum(port.stores_accepted for port in self.write_ports) != stores_before:
            progressed = True
        for lsq in self.lsqs:
            busy_before = not lsq.idle
            lsq.step()
            if busy_before:
                progressed = True
        for channel in self._all_channels():
            if channel._staged:
                channel.commit()
        self.cycles += 1
        if self.invariant_checker is not None:
            self.invariant_checker.check_system(self)
        if self.telemetry is not None:
            self.telemetry.sample_system(self)
        return progressed

    @property
    def ports_idle(self) -> bool:
        return (
            all(port.idle for port in self.read_ports)
            and all(port.idle for port in self.write_ports)
            and all(lsq.idle for lsq in self.lsqs)
        )

    def run(
        self,
        max_cycles: int = 2_000_000,
        stall_limit: int = 20_000,
        flush_limit: int = 1_000,
    ) -> int:
        """Run until every PE halts and memory ports drain; returns cycles.

        Raises :class:`DeadlockError` — carrying a structured forensic
        report (per-PE predicate state, queue occupancies with head/neck
        tags, in-flight pipeline registers, last-triggered instructions)
        — on deadlock (no architectural progress for ``stall_limit``
        cycles) or timeout.
        """
        if not self.pes:
            raise ConfigError("system has no PEs")
        idle_streak = 0
        for _ in range(max_cycles):
            if self.all_halted:
                break
            progressed = self.step()
            idle_streak = 0 if progressed else idle_streak + 1
            if idle_streak >= stall_limit:
                raise self._deadlock_error(
                    "deadlock: no progress for "
                    f"{stall_limit} cycles at cycle {self.cycles}"
                )
        else:
            raise self._deadlock_error(f"timeout after {max_cycles} cycles")
        # Let in-flight memory traffic land (stores issued just before halt).
        for _ in range(flush_limit):
            if self.ports_idle:
                self._finish_run()
                return self.cycles
            self.step()
        raise self._deadlock_error(
            f"memory ports still busy {flush_limit} cycles after halt"
        )

    def _finish_run(self) -> None:
        """End-of-run bookkeeping: telemetry close-out, counter audits."""
        if self.telemetry is not None:
            self.telemetry.finish()
        if self.counter_checks:
            for pe in self.pes:
                check = getattr(pe.counters, "check_consistency", None)
                if check is None:
                    continue
                try:
                    check()
                except AssertionError as exc:
                    raise attribute_error(
                        SimulationError(str(exc)), pe.name, self.cycles
                    )

    def forensic_report(self) -> dict:
        """Structured dump of everything a hang post-mortem needs."""
        # Imported here: the resilience layer may inspect fabric objects,
        # so the fabric cannot import it at module load time.
        from repro.resilience.forensics import forensic_report

        return forensic_report(self)

    def _deadlock_error(self, message: str) -> DeadlockError:
        from repro.resilience.forensics import format_report

        report = self.forensic_report()
        return DeadlockError(f"{message}\n{format_report(report)}", report=report)
