"""Multi-PE system: wiring, memory ports, and the cycle loop.

A :class:`System` owns a set of processing elements (functional or
pipelined — anything with the PE interface), a memory with read/write
ports, and the channel wiring between them.  A producer PE's output
queue and the consumer's input queue are the *same*
:class:`~repro.arch.queue.TaggedQueue` object; staged-enqueue commit
gives every channel a one-cycle traversal independent of step order.

The run loop plays the role of the paper's Linux driver + userspace
library: program the PEs, preload memory, run to completion, read back
performance counters from the designated worker PE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.queue import TaggedQueue
from repro.errors import (
    ConfigError,
    DeadlockError,
    SimulationError,
    attribute_error,
)
from repro.fabric.lsq import LoadStoreQueue
from repro.fabric.memory import Memory, MemoryReadPort, MemoryWritePort


@dataclass
class ChannelInfo:
    """One channel's endpoints, as tooling (the static analyzer) sees them.

    ``producer`` / ``consumer`` are ``(pe_name, queue_index)`` pairs when
    a PE drives or drains the channel; ``port_producer`` /
    ``port_consumer`` name a memory port or LSQ playing that role
    instead.  ``feeds_from`` links a response channel back to the request
    channel whose tags the port propagates (read ports and LSQ load
    paths echo the request tag on the response, Section 6), so tag-flow
    analysis can follow traffic through memory.
    """

    queue: TaggedQueue
    producer: tuple[str, int] | None = None
    consumer: tuple[str, int] | None = None
    port_producer: str | None = None
    port_consumer: str | None = None
    feeds_from: TaggedQueue | None = None


class System:
    """A small spatial array plus memory, as in the paper's 4x4-max testbed."""

    def __init__(self, memory_words: int = 1 << 16, memory_latency: int = 4) -> None:
        self.memory = Memory(memory_words)
        self.memory_latency = memory_latency
        self.pes: list = []
        self.read_ports: list[MemoryReadPort] = []
        self.write_ports: list[MemoryWritePort] = []
        self.lsqs: list[LoadStoreQueue] = []
        self.cycles = 0
        self._channels: list[TaggedQueue] | None = None   # cached wiring
        #: Optional per-cycle invariant checker (resilience layer); when
        #: set, :meth:`step` calls it at every cycle boundary.
        self.invariant_checker = None
        #: Optional telemetry sink (observability layer); when set,
        #: :meth:`step` samples fabric state at every cycle boundary.
        #: Attach via :meth:`repro.obs.events.Telemetry.attach_system`.
        self.telemetry = None
        #: Opt-in cycle-accounting audit: when enabled (see
        #: :meth:`enable_counter_checks`), :meth:`run` verifies every
        #: PE's ``PipelineCounters.check_consistency`` after completion,
        #: so accounting leaks fail loudly instead of skewing CPI stacks.
        self.counter_checks = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_pe(self, pe) -> None:
        """Register a PE (functional or pipelined)."""
        if any(existing.name == pe.name for existing in self.pes):
            raise ConfigError(f"duplicate PE name {pe.name!r}")
        self.pes.append(pe)
        self._channels = None

    def _rewired(self, *pes) -> None:
        """Invalidate caches that depend on the current queue wiring."""
        self._channels = None
        for pe in pes:
            invalidate = getattr(pe, "invalidate_schedule_cache", None)
            if invalidate is not None:
                invalidate()

    def pe(self, name: str):
        """Look up a PE by name."""
        for pe in self.pes:
            if pe.name == name:
                return pe
        raise ConfigError(f"no PE named {name!r}")

    def connect(self, producer, out_index: int, consumer, in_index: int) -> TaggedQueue:
        """Wire producer output queue to consumer input queue (one channel)."""
        channel = TaggedQueue(
            producer.outputs[out_index].capacity,
            f"{producer.name}.o{out_index}->{consumer.name}.i{in_index}",
        )
        producer.outputs[out_index] = channel
        consumer.inputs[in_index] = channel
        self._rewired(producer, consumer)
        return channel

    def add_read_port(self, pe, request_out: int, response_in: int) -> MemoryReadPort:
        """Give a PE a load endpoint: addresses out, data back in."""
        port = MemoryReadPort(
            self.memory, self.memory_latency, f"rd<-{pe.name}.o{request_out}"
        )
        request = TaggedQueue(pe.outputs[request_out].capacity, f"{port.name}.req")
        response = TaggedQueue(pe.inputs[response_in].capacity, f"{port.name}.rsp")
        pe.outputs[request_out] = request
        pe.inputs[response_in] = response
        port.request = request
        port.response = response
        self.read_ports.append(port)
        self._rewired(pe)
        return port

    def add_write_port(self, addr_pe, addr_out: int, data_pe, data_out: int) -> MemoryWritePort:
        """Give PE(s) a store endpoint: an address channel and a data channel.

        The two channels may come from the same PE (it interleaves its own
        address/data traffic) or from two PEs (the ``stream`` pattern).
        """
        port = MemoryWritePort(self.memory, f"wr<-{addr_pe.name}/{data_pe.name}")
        address = TaggedQueue(addr_pe.outputs[addr_out].capacity, f"{port.name}.addr")
        data = TaggedQueue(data_pe.outputs[data_out].capacity, f"{port.name}.data")
        addr_pe.outputs[addr_out] = address
        data_pe.outputs[data_out] = data
        port.address = address
        port.data = data
        self.write_ports.append(port)
        self._rewired(addr_pe, data_pe)
        return port

    def add_load_store_queue(
        self,
        pe,
        load_request_out: int,
        load_response_in: int,
        store_address_out: int,
        store_data_out: int,
        store_buffer_entries: int = 4,
    ) -> LoadStoreQueue:
        """Give a PE a decoupled load-store queue (Section 6 extension).

        Replaces a (read port, write port) pair with one unit that keeps
        an in-order store buffer and forwards buffered stores to younger
        matching loads.
        """
        lsq = LoadStoreQueue(
            self.memory, self.memory_latency, store_buffer_entries,
            name=f"lsq<-{pe.name}",
        )
        capacity = pe.outputs[load_request_out].capacity
        lsq.load_request = TaggedQueue(capacity, f"{lsq.name}.ld.req")
        lsq.load_response = TaggedQueue(
            pe.inputs[load_response_in].capacity, f"{lsq.name}.ld.rsp")
        lsq.store_address = TaggedQueue(
            pe.outputs[store_address_out].capacity, f"{lsq.name}.st.addr")
        lsq.store_data = TaggedQueue(
            pe.outputs[store_data_out].capacity, f"{lsq.name}.st.data")
        pe.outputs[load_request_out] = lsq.load_request
        pe.inputs[load_response_in] = lsq.load_response
        pe.outputs[store_address_out] = lsq.store_address
        pe.outputs[store_data_out] = lsq.store_data
        self.lsqs.append(lsq)
        self._rewired(pe)
        return lsq

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def _all_channels(self) -> list[TaggedQueue]:
        """Every distinct channel in the system (cached; wiring methods
        invalidate).  Rebuilding this dict per cycle dominated the run
        loop's own overhead on multi-PE workloads."""
        if self._channels is not None:
            return self._channels
        seen: dict[int, TaggedQueue] = {}
        for pe in self.pes:
            for queue in list(pe.inputs) + list(pe.outputs):
                seen[id(queue)] = queue
        for port in self.read_ports:
            for queue in (port.request, port.response):
                if queue is not None:
                    seen[id(queue)] = queue
        for port in self.write_ports:
            for queue in (port.address, port.data):
                if queue is not None:
                    seen[id(queue)] = queue
        for lsq in self.lsqs:
            for queue in (lsq.load_request, lsq.load_response,
                          lsq.store_address, lsq.store_data):
                if queue is not None:
                    seen[id(queue)] = queue
        self._channels = list(seen.values())
        return self._channels

    def wiring(self) -> list[ChannelInfo]:
        """Structured channel inventory: every distinct queue with its
        producing and consuming endpoints resolved.

        This is the fabric-level input of :mod:`repro.analyze.fabric`:
        channel identity is queue object identity (``connect`` makes the
        producer's output queue and the consumer's input queue the same
        object), and memory ports are annotated with the request channel
        whose tags they propagate onto responses.
        """
        infos: dict[int, ChannelInfo] = {}

        def info(queue: TaggedQueue) -> ChannelInfo:
            return infos.setdefault(id(queue), ChannelInfo(queue=queue))

        for pe in self.pes:
            for index, queue in enumerate(pe.outputs):
                info(queue).producer = (pe.name, index)
            for index, queue in enumerate(pe.inputs):
                info(queue).consumer = (pe.name, index)
        for port in self.read_ports:
            if port.request is not None:
                info(port.request).port_consumer = port.name
            if port.response is not None:
                response = info(port.response)
                response.port_producer = port.name
                response.feeds_from = port.request
        for port in self.write_ports:
            for queue in (port.address, port.data):
                if queue is not None:
                    info(queue).port_consumer = port.name
        for lsq in self.lsqs:
            if lsq.load_request is not None:
                info(lsq.load_request).port_consumer = lsq.name
            if lsq.load_response is not None:
                response = info(lsq.load_response)
                response.port_producer = lsq.name
                response.feeds_from = lsq.load_request
            for queue in (lsq.store_address, lsq.store_data):
                if queue is not None:
                    info(queue).port_consumer = lsq.name
        return list(infos.values())

    @property
    def all_halted(self) -> bool:
        return all(pe.halted for pe in self.pes)

    def attach_invariant_checker(self, checker) -> None:
        """Enable opt-in per-cycle invariant checking (resilience layer)."""
        self.invariant_checker = checker

    def enable_counter_checks(self, enabled: bool = True) -> None:
        """Opt into end-of-run cycle-accounting verification.

        Like :meth:`attach_invariant_checker`, this is off by default;
        tests and campaigns that want accounting leaks to fail loudly
        flip it on, and :meth:`run` then calls every PE counter block's
        ``check_consistency`` once the run completes.
        """
        self.counter_checks = enabled

    def step(self) -> bool:
        """Advance the whole system one cycle; True if anything progressed."""
        progressed = False
        for pe in self.pes:
            try:
                if pe.step():
                    progressed = True
            except SimulationError as exc:
                raise attribute_error(exc, pe.name, self.cycles) from exc
        for port in self.read_ports:
            busy_before = not port.idle
            port.step()
            if busy_before:
                progressed = True
        stores_before = sum(port.stores_accepted for port in self.write_ports)
        for port in self.write_ports:
            port.step()
        if sum(port.stores_accepted for port in self.write_ports) != stores_before:
            progressed = True
        for lsq in self.lsqs:
            busy_before = not lsq.idle
            lsq.step()
            if busy_before:
                progressed = True
        for channel in self._all_channels():
            if channel._staged:
                channel.commit()
        self.cycles += 1
        if self.invariant_checker is not None:
            self.invariant_checker.check_system(self)
        if self.telemetry is not None:
            self.telemetry.sample_system(self)
        return progressed

    @property
    def ports_idle(self) -> bool:
        return (
            all(port.idle for port in self.read_ports)
            and all(port.idle for port in self.write_ports)
            and all(lsq.idle for lsq in self.lsqs)
        )

    def _run_interleaved(self, max_cycles: int, stall_limit: int) -> bool:
        """The reference cycle loop: one :meth:`step` per iteration.
        Returns True when every PE halted within the budget."""
        idle_streak = 0
        for _ in range(max_cycles):
            if self.all_halted:
                return True
            progressed = self.step()
            idle_streak = 0 if progressed else idle_streak + 1
            if idle_streak >= stall_limit:
                raise self._deadlock_error(
                    "deadlock: no progress for "
                    f"{stall_limit} cycles at cycle {self.cycles}"
                )
        return False

    def _run_jit(self, max_cycles: int, stall_limit: int) -> bool:
        """Hoisted-state cycle loop for all-jit systems (no system-level
        instrumentation attached).

        Per cycle this performs exactly :meth:`step`'s schedule — PEs in
        order, read ports, write ports, LSQs, channel commits — but with
        the fabric lists in locals, ports that provably cannot act
        skipped (an idle read port only advances its private clock, which
        is relative to acceptance time; a write port missing an operand
        does nothing), and the progress predicate folded into the same
        occupancy tests.  On single-PE systems without LSQs, whenever no
        port can make progress until the PE next enqueues, the loop
        delegates to the PE's generated block run — which commits the
        PE's queues each cycle, exactly as the channel-commit pass here
        would — and resumes interleaving the moment traffic appears.
        """
        live = [(pe._jit.step, pe) for pe in self.pes if not pe.halted]
        rports = self.read_ports
        wports = self.write_ports
        lsqs = self.lsqs
        channels = self._all_channels()
        solo = self.pes[0] if (
            len(self.pes) == 1
            and not lsqs
            and self.pes[0]._jit_block is not None
        ) else None
        counters = [pe.counters for pe in self.pes]
        dq_prev = -1
        idle_streak = 0
        remaining = max_cycles
        while remaining > 0:
            if not live:
                return True
            if solo is not None:
                for port in rports:
                    if port._in_flight or (
                        port.request is not None and port.request._live
                    ):
                        break
                else:
                    for port in wports:
                        if (
                            port.address is not None
                            and port.address._live
                            and port.data is not None
                            and port.data._live
                        ):
                            break
                    else:
                        before = solo.counters.cycles
                        try:
                            idle_streak = solo._jit_block(
                                remaining, True, idle_streak, stall_limit
                            )
                        except SimulationError as exc:
                            self.cycles += max(
                                0, solo.counters.cycles - before - 1
                            )
                            raise attribute_error(
                                exc, solo.name, self.cycles) from exc
                        ran = solo.counters.cycles - before
                        if ran:
                            self.cycles += ran
                            remaining -= ran
                            if idle_streak >= stall_limit:
                                raise self._deadlock_error(
                                    "deadlock: no progress for "
                                    f"{stall_limit} cycles at cycle "
                                    f"{self.cycles}"
                                )
                            if solo.halted:
                                live = []
                            continue
                        # Zero cycles: the block refused (a hook is
                        # attached or entries are staged) — take the
                        # interleaved path for this cycle.
            prog = False
            pruned = False
            moved = False
            multi = False
            cand = None
            pe = None
            try:
                for entry in live:
                    pe = entry[1]
                    if entry[0](pe):
                        if prog:
                            multi = True
                        prog = True
                        cand = entry
                    if pe.halted:
                        pruned = True
            except SimulationError as exc:
                raise attribute_error(exc, pe.name, self.cycles) from exc
            pe_prog = prog
            if pruned:
                live = [entry for entry in live if not entry[1].halted]
            for port in rports:
                if port._in_flight or (
                    port.request is not None and port.request._live
                ):
                    if port.request is not None and port.request._live:
                        moved = True
                    port.step()
                    prog = True
            for port in wports:
                if (
                    port.address is not None
                    and port.address._live
                    and port.data is not None
                    and port.data._live
                ):
                    port.step()
                    prog = True
                    moved = True
            for lsq in lsqs:
                busy_before = not lsq.idle
                lsq.step()
                if busy_before:
                    prog = True
            for channel in channels:
                if channel._staged:
                    channel.commit()
                    moved = True
            self.cycles += 1
            remaining -= 1
            if prog:
                idle_streak = 0
            else:
                idle_streak += 1
                if idle_streak >= stall_limit:
                    raise self._deadlock_error(
                        "deadlock: no progress for "
                        f"{stall_limit} cycles at cycle {self.cycles}"
                    )
            dq_now = 0
            for c_ in counters:
                dq_now += c_.dequeues
            deq = dq_now != dq_prev
            dq_prev = dq_now
            if moved or lsqs or not live:
                continue
            if pe_prog:
                # A dequeue this cycle frees channel space a sibling that
                # already evaluated (it steps earlier) only sees next
                # cycle — it may fire then, so it is not quiescent.
                if deq:
                    continue
                # Exactly one PE progressed, it is last in step order,
                # and every other live PE is quiescent (empty pipe, no
                # hooks, none-triggered this cycle): the runner's block
                # entry point can batch cycles on its own.  Its enqueues
                # and dequeues are the only events that can change what
                # the quiescent PEs observe, and the block stops at the
                # end of any cycle where either happens — because the
                # runner steps last,
                # siblings would only see the change the following
                # cycle under interleaving too.  Quiescent PEs are then
                # credited their cycle and none-triggered counts for
                # every cycle the block ran.
                if multi or cand is not live[-1]:
                    continue
                cp = cand[1]
                if (
                    cp._jit_block is None
                    or cp.fault_hook is not None
                    or cp.telemetry is not None
                ):
                    continue
                ok = True
                for entry in live:
                    p = entry[1]
                    if p is cp:
                        continue
                    if (
                        p.fault_hook is not None
                        or p.telemetry is not None
                        or any(p._pipe)
                    ):
                        ok = False
                        break
                if ok:
                    for port in rports:
                        if port._in_flight:
                            ok = False
                            break
                if not ok:
                    continue
                before = cp.counters.cycles
                try:
                    idle_streak = cp._jit_block(
                        remaining, True, idle_streak, stall_limit,
                        len(live) > 1,
                    )
                except SimulationError as exc:
                    ran = max(0, cp.counters.cycles - before - 1)
                    self.cycles += ran
                    for entry in live:
                        if entry[1] is not cp:
                            pc = entry[1].counters
                            pc.cycles += ran
                            pc.none_triggered_cycles += ran
                    raise attribute_error(exc, cp.name, self.cycles) from exc
                ran = cp.counters.cycles - before
                if ran:
                    self.cycles += ran
                    remaining -= ran
                    for entry in live:
                        if entry[1] is not cp:
                            pc = entry[1].counters
                            pc.cycles += ran
                            pc.none_triggered_cycles += ran
                    if idle_streak >= stall_limit:
                        raise self._deadlock_error(
                            "deadlock: no progress for "
                            f"{stall_limit} cycles at cycle {self.cycles}"
                        )
                    if cp.halted:
                        live = [e for e in live if not e[1].halted]
                continue
            # No PE issued or retired this cycle and nothing changed any
            # state a trigger can observe (no queue commit, no request
            # dequeue, no store).  If on top of that every live PE has
            # an empty pipeline and no per-PE hooks, its decision walk
            # is a pure function of frozen state: each further cycle in
            # this regime only increments its cycle and none-triggered
            # counters, until a memory response commits.  Batch those
            # wait cycles stepping only the in-flight read ports.
            for entry in live:
                p = entry[1]
                if (
                    p.fault_hook is not None
                    or p.telemetry is not None
                    or any(p._pipe)
                ):
                    break
            else:
                for port in rports:
                    if port.request is not None and port.request._live:
                        break
                else:
                    for port in wports:
                        if (
                            port.address is not None
                            and port.address._live
                            and port.data is not None
                            and port.data._live
                        ):
                            break
                    else:
                        while remaining > 0:
                            busy = False
                            woke = False
                            for port in rports:
                                if port._in_flight:
                                    port.step()
                                    busy = True
                            for channel in channels:
                                if channel._staged:
                                    channel.commit()
                                    woke = True
                            self.cycles += 1
                            remaining -= 1
                            for entry in live:
                                pc = entry[1].counters
                                pc.cycles += 1
                                pc.none_triggered_cycles += 1
                            if busy:
                                idle_streak = 0
                            else:
                                idle_streak += 1
                                if idle_streak >= stall_limit:
                                    raise self._deadlock_error(
                                        "deadlock: no progress for "
                                        f"{stall_limit} cycles at cycle "
                                        f"{self.cycles}"
                                    )
                            if woke:
                                break
        return False

    def run(
        self,
        max_cycles: int = 2_000_000,
        stall_limit: int = 20_000,
        flush_limit: int = 1_000,
    ) -> int:
        """Run until every PE halts and memory ports drain; returns cycles.

        Raises :class:`DeadlockError` — carrying a structured forensic
        report (per-PE predicate state, queue occupancies with head/neck
        tags, in-flight pipeline registers, last-triggered instructions)
        — on deadlock (no architectural progress for ``stall_limit``
        cycles) or timeout.

        When every PE carries a jit specialization and no system-level
        instrumentation is attached, the cycle loop runs through
        :meth:`_run_jit` — the same per-cycle schedule as :meth:`step`
        with the fabric state hoisted, and, on single-PE systems, whole
        stretches delegated to the PE's generated block loop while no
        memory port can make progress.  Both drivers produce identical
        architectural state, counters, and cycle counts.
        """
        if not self.pes:
            raise ConfigError("system has no PEs")
        use_jit = (
            self.invariant_checker is None
            and self.telemetry is None
            and all(getattr(pe, "_jit", None) is not None for pe in self.pes)
        )
        completed = (self._run_jit(max_cycles, stall_limit) if use_jit
                     else self._run_interleaved(max_cycles, stall_limit))
        if not completed:
            raise self._deadlock_error(f"timeout after {max_cycles} cycles")
        # Let in-flight memory traffic land (stores issued just before halt).
        for _ in range(flush_limit):
            if self.ports_idle:
                self._finish_run()
                return self.cycles
            self.step()
        raise self._deadlock_error(
            f"memory ports still busy {flush_limit} cycles after halt"
        )

    def _finish_run(self) -> None:
        """End-of-run bookkeeping: telemetry close-out, counter audits."""
        if self.telemetry is not None:
            self.telemetry.finish()
        if self.counter_checks:
            for pe in self.pes:
                check = getattr(pe.counters, "check_consistency", None)
                if check is None:
                    continue
                try:
                    check()
                except AssertionError as exc:
                    raise attribute_error(
                        SimulationError(str(exc)), pe.name, self.cycles
                    ) from exc

    def forensic_report(self) -> dict:
        """Structured dump of everything a hang post-mortem needs."""
        # Imported here: the resilience layer may inspect fabric objects,
        # so the fabric cannot import it at module load time.
        from repro.resilience.forensics import forensic_report

        return forensic_report(self)

    def _deadlock_error(self, message: str) -> DeadlockError:
        from repro.resilience.forensics import format_report

        report = self.forensic_report()
        return DeadlockError(f"{message}\n{format_report(report)}", report=report)
