"""Per-PE decoupled load-store queue (paper Section 6 future work).

The paper plans "a future version of the ISA and system ... that will
enable main memory access through per-PE load-store queues using the
decoupled load access paradigm, as opposed to generating interconnect
traffic."  This module implements that extension as a drop-in
replacement for a (read port, write port) pair:

* the PE streams load *addresses* early (the access slice runs ahead of
  the execute slice — classic decoupled access/execute), and data
  returns on a response channel after the memory latency;
* stores enter an in-order **store buffer** and drain to memory one per
  cycle;
* younger loads check the store buffer: a load whose address matches a
  buffered store receives the value by **store-to-load forwarding**
  without touching memory, preserving program order without stalling
  the access stream.

Ordering model: operations are sequenced by arrival cycle, stores before
loads within a cycle (the conservative choice).  Loads never bypass a
matching older store; non-matching loads proceed around buffered stores
— the memory-level parallelism the decoupled paradigm exists to expose.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.arch.queue import TaggedQueue
from repro.errors import SimMemoryError
from repro.fabric.memory import Memory


@dataclass
class _PendingLoad:
    ready_at: int
    value: int
    tag: int


@dataclass
class _BufferedStore:
    address: int
    value: int


class LoadStoreQueue:
    """A unified, per-PE memory endpoint with decoupled loads."""

    #: Observability seam (``port_grant`` events); ``None`` when off.
    telemetry = None

    def __init__(
        self,
        memory: Memory,
        latency: int = 4,
        store_buffer_entries: int = 4,
        name: str = "lsq",
    ) -> None:
        if latency < 1:
            raise SimMemoryError("load latency must be at least one cycle")
        if store_buffer_entries < 1:
            raise SimMemoryError("store buffer needs at least one entry")
        self.memory = memory
        self.latency = latency
        self.name = name
        # Channel endpoints, wired by the System (or manually in tests).
        self.load_request: TaggedQueue | None = None    # addresses in
        self.load_response: TaggedQueue | None = None   # data out
        self.store_address: TaggedQueue | None = None
        self.store_data: TaggedQueue | None = None

        self._store_buffer: deque[_BufferedStore] = deque()
        self._store_capacity = store_buffer_entries
        self._in_flight: deque[_PendingLoad] = deque()
        self._now = 0
        self.loads_issued = 0
        self.stores_committed = 0
        self.forwarded_loads = 0

    # ------------------------------------------------------------------

    def _forward_value(self, address: int) -> int | None:
        """Youngest buffered store to this address, if any."""
        for store in reversed(self._store_buffer):
            if store.address == address:
                return store.value
        return None

    def step(self) -> None:
        """One cycle of the access engine."""
        self._now += 1

        # 1. Retire the oldest due load if the response channel has room.
        if (
            self._in_flight
            and self._in_flight[0].ready_at <= self._now
            and self.load_response is not None
            and not self.load_response.is_full
        ):
            load = self._in_flight.popleft()
            self.load_response.enqueue(load.value, load.tag)

        # 2. Drain one store-buffer entry to memory.
        if self._store_buffer:
            store = self._store_buffer.popleft()
            self.memory.store(store.address, store.value)
            self.stores_committed += 1

        # 3. Accept a new store (stores order ahead of same-cycle loads).
        if (
            self.store_address is not None
            and self.store_data is not None
            and not self.store_address.is_empty
            and not self.store_data.is_empty
            and len(self._store_buffer) < self._store_capacity
        ):
            address = self.store_address.dequeue().value
            value = self.store_data.dequeue().value
            self._store_buffer.append(_BufferedStore(address, value))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "port_grant", self.name, op="store", address=address,
                    value=value,
                )

        # 4. Accept a new load.  Matching buffered stores forward their
        # value; the load still pays the pipeline latency (the datapath
        # between buffer and response is the same length).
        if (
            self.load_request is not None
            and not self.load_request.is_empty
            and len(self._in_flight) < self.latency
        ):
            request = self.load_request.dequeue()
            forwarded = self._forward_value(request.value)
            if forwarded is not None:
                value = forwarded
                self.forwarded_loads += 1
            else:
                value = self.memory.load(request.value)
            self.loads_issued += 1
            if self.telemetry is not None:
                self.telemetry.emit(
                    "port_grant", self.name, op="load", address=request.value,
                    tag=request.tag, forwarded=forwarded is not None,
                )
            self._in_flight.append(
                _PendingLoad(
                    ready_at=self._now + self.latency,
                    value=value,
                    tag=request.tag,
                )
            )

    @property
    def idle(self) -> bool:
        return (
            not self._in_flight
            and not self._store_buffer
            and (self.load_request is None or self.load_request.is_empty)
            and (self.store_address is None or self.store_address.is_empty)
            and (self.store_data is None or self.store_data.is_empty)
        )

    # Make the LSQ a drop-in "write port" for System bookkeeping.
    @property
    def stores_accepted(self) -> int:
        return self.stores_committed
