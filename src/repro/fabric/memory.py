"""System memory and its queue-endpoint ports.

Main-memory operations in this architecture travel over the ordinary
communication queues, with read and write ports acting as channel
endpoints (Section 2.2, after prior work on distributed memory
operations).  The paper's testbed serves all data from on-chip memory
with a fixed four-cycle load latency, which these ports reproduce:

* :class:`MemoryReadPort` — dequeues an address from its request queue
  each cycle and, ``latency`` cycles later, enqueues the loaded word on
  its response queue.  Requests are pipelined (initiation interval 1).
* :class:`MemoryWritePort` — dequeues an (address, data) pair from its
  two request queues when both are available and commits the store.

Tags on the request are propagated to the response, so programs can
thread semantic information (e.g. end-of-stream) through memory replies.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.arch.queue import TaggedQueue
from repro.errors import SimMemoryError


class Memory:
    """Word-addressed system memory."""

    def __init__(self, size_words: int, word_mask: int = 0xFFFFFFFF) -> None:
        if size_words <= 0:
            raise SimMemoryError(f"memory size must be positive, got {size_words}")
        self._words = [0] * size_words
        self._word_mask = word_mask
        self.loads = 0
        self.stores = 0

    def load(self, address: int) -> int:
        self._check(address)
        self.loads += 1
        return self._words[address]

    def store(self, address: int, value: int) -> None:
        self._check(address)
        self.stores += 1
        self._words[address] = value & self._word_mask

    def preload(self, values: list[int], base: int = 0) -> None:
        """Host-side bulk initialization (data buffers for a benchmark)."""
        if base < 0 or base + len(values) > len(self._words):
            raise SimMemoryError(
                f"preload of {len(values)} words at {base} exceeds memory size"
            )
        for offset, value in enumerate(values):
            self._words[base + offset] = value & self._word_mask

    def dump(self, base: int, count: int) -> list[int]:
        self._check(base)
        if count < 0 or base + count > len(self._words):
            raise SimMemoryError(f"dump of {count} words at {base} exceeds memory size")
        return self._words[base:base + count]

    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._words):
            raise SimMemoryError(
                f"memory address {address} out of range 0..{len(self._words) - 1}"
            )

    def __len__(self) -> int:
        return len(self._words)


@dataclass
class _InFlightLoad:
    ready_at: int
    value: int
    tag: int


class MemoryReadPort:
    """A pipelined load endpoint: address queue in, data queue out."""

    #: Observability seam (``port_grant`` events); ``None`` when off.
    telemetry = None

    def __init__(self, memory: Memory, latency: int = 4, name: str = "rdport") -> None:
        if latency < 1:
            raise SimMemoryError("read latency must be at least one cycle")
        self.memory = memory
        self.latency = latency
        self.name = name
        self.request: TaggedQueue | None = None   # wired by the System
        self.response: TaggedQueue | None = None
        self._in_flight: deque[_InFlightLoad] = deque()
        self._now = 0

    def step(self) -> None:
        """One cycle: retire due responses, accept one new request."""
        self._now += 1
        # Retire the oldest response if due and there is space downstream.
        if (
            self._in_flight
            and self._in_flight[0].ready_at <= self._now
            and self.response is not None
            and not self.response.is_full
        ):
            load = self._in_flight.popleft()
            self.response.enqueue(load.value, load.tag)
        # Accept a new request.  Loads are performed at acceptance (the
        # memory is static during flight), the response waits out latency.
        # Avoid unbounded buildup: only accept when the in-flight window
        # still has room for this load's eventual response.
        if (self.request is not None and not self.request.is_empty
                and len(self._in_flight) < self.latency):
            entry = self.request.dequeue()
            self._in_flight.append(
                _InFlightLoad(
                    ready_at=self._now + self.latency,
                    value=self.memory.load(entry.value),
                    tag=entry.tag,
                )
            )
            if self.telemetry is not None:
                self.telemetry.emit(
                    "port_grant", self.name, op="load",
                    address=entry.value, tag=entry.tag,
                )

    @property
    def idle(self) -> bool:
        return not self._in_flight and (self.request is None or self.request.is_empty)


class MemoryWritePort:
    """A store endpoint: address queue and data queue in.

    ``stream``-style workloads drive the two queues from different PEs;
    single-PE workloads interleave address and data words themselves.
    """

    #: Observability seam (``port_grant`` events); ``None`` when off.
    telemetry = None

    def __init__(self, memory: Memory, name: str = "wrport") -> None:
        self.memory = memory
        self.name = name
        self.address: TaggedQueue | None = None   # wired by the System
        self.data: TaggedQueue | None = None
        self.stores_accepted = 0

    def step(self) -> None:
        """Commit one store per cycle when both operands are available."""
        if (
            self.address is not None
            and self.data is not None
            and not self.address.is_empty
            and not self.data.is_empty
        ):
            address = self.address.dequeue()
            data = self.data.dequeue()
            self.memory.store(address.value, data.value)
            self.stores_accepted += 1
            if self.telemetry is not None:
                self.telemetry.emit(
                    "port_grant", self.name, op="store",
                    address=address.value, value=data.value,
                )

    @property
    def idle(self) -> bool:
        return (
            (self.address is None or self.address.is_empty)
            and (self.data is None or self.data.is_empty)
        )
