"""Assembled program container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import encode_program
from repro.isa.instruction import Instruction
from repro.params import ArchParams


@dataclass
class Program:
    """One PE's assembled instruction list plus configuration metadata.

    ``initial_predicates`` comes from the optional ``.start %p = ...``
    directive and is applied to the predicate file before execution —
    programs use it to enter their start state.

    ``source`` and ``path`` are diagnostic metadata: the assembler
    records the original source text (and file path, when assembled from
    disk) so tooling — assembler errors, the static analyzer's findings
    — can cite and quote the offending source line.  Both are optional
    and excluded from nothing: hand-built programs simply leave them
    unset.
    """

    instructions: list[Instruction] = field(default_factory=list)
    initial_predicates: int = 0
    name: str = ""
    source: str | None = None
    path: str | None = None

    def source_line(self, line: int) -> str | None:
        """The 1-indexed source line, when source text is attached."""
        if self.source is None or line < 1:
            return None
        lines = self.source.splitlines()
        if line > len(lines):
            return None
        return lines[line - 1]

    def __len__(self) -> int:
        return len(self.instructions)

    def binary(self, params: ArchParams) -> bytes:
        """Encode to the padded binary format (``program.bin``)."""
        return encode_program(self.instructions, params)

    def configure(self, pe) -> None:
        """Load this program onto a PE (functional or pipelined)."""
        pe.load_program(self.instructions)
        pe.preds.reset(self.initial_predicates)
        pe._initial_predicates = self.initial_predicates
        # Tooling breadcrumb: the static analyzer recovers the original
        # Program (with its source text) from a programmed PE.
        pe.loaded_program = self
