"""Assembled program container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import encode_program
from repro.isa.instruction import Instruction
from repro.params import ArchParams


@dataclass
class Program:
    """One PE's assembled instruction list plus configuration metadata.

    ``initial_predicates`` comes from the optional ``.start %p = ...``
    directive and is applied to the predicate file before execution —
    programs use it to enter their start state.
    """

    instructions: list[Instruction] = field(default_factory=list)
    initial_predicates: int = 0
    name: str = ""

    def __len__(self) -> int:
        return len(self.instructions)

    def binary(self, params: ArchParams) -> bytes:
        """Encode to the padded binary format (``program.bin``)."""
        return encode_program(self.instructions, params)

    def configure(self, pe) -> None:
        """Load this program onto a PE (functional or pipelined)."""
        pe.load_program(self.instructions)
        pe.preds.reset(self.initial_predicates)
        pe._initial_predicates = self.initial_predicates
