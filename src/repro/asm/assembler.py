"""The triggered-instruction assembler.

Source syntax follows the paper's examples (Section 2.2):

.. code-block:: text

    # A merge-sort worker step: compare two tagged inputs.
    when %p == XXXX0000 with %i0.0, %i3.0:
        ult %p7, %i3, %i0; set %p = ZZZZ0001;

One instruction per ``when`` block:

* **Guard** — ``when %p == <pattern>`` where the pattern is written
  MSB-first over ``{0, 1, X}`` (``X`` = don't care), optionally followed
  by ``with <check>, ...`` where each check is ``%iN.T`` (head tag of
  input queue N must equal T) or ``%iN.!T`` (must differ — the NotTags
  encoding).
* **Actions**, ``;``-separated, at most one of each kind:

  - a datapath operation ``op dst, src1, src2`` with destinations
    ``%rN`` / ``%oN.T`` (output queue N, enqueue tag T) / ``%pN`` and
    sources ``%rN`` / ``%iN`` (peek head of input queue N) / ``$imm``
    (decimal, hex or negative immediate);
  - ``set %p = <pattern>`` with MSB-first ``{0, 1, Z}`` (``Z`` = leave
    unchanged) — the issue-time predicate force-update;
  - ``deq %iN[, %iM]`` — input queues to dequeue.

Program-level directives:

* ``.start %p = <pattern>`` (``{0, 1}``) — initial predicate state.

Comments run from ``#`` or ``//`` to end of line.  Instruction priority
is source order: earlier instructions win.
"""

from __future__ import annotations

import re

from repro.asm.program import Program
from repro.errors import AssemblerError
from repro.isa.instruction import (
    DatapathOp,
    Destination,
    Instruction,
    Operand,
    PredUpdate,
    TagCheck,
    Trigger,
)
from repro.isa.opcodes import op_by_name
from repro.params import ArchParams, DEFAULT_PARAMS

_COMMENT = re.compile(r"(#|//).*$")
_WHEN = re.compile(
    r"when\s+%p\s*==\s*(?P<pattern>[01xX]+)\s*(?:with\s+(?P<checks>[^:]+?))?\s*:",
)
_CHECK = re.compile(r"^%i(?P<queue>\d+)\.(?P<neg>!)?(?P<tag>\d+)$")
_REG = re.compile(r"^%r(\d+)$")
_IN = re.compile(r"^%i(\d+)$")
_PRED = re.compile(r"^%p(\d+)$")
_OUT = re.compile(r"^%o(?P<queue>\d+)\.(?P<tag>\d+)$")
_IMM = re.compile(r"^\$(-?(0[xX][0-9a-fA-F]+|\d+))$")
_SET = re.compile(r"^set\s+%p\s*=\s*(?P<pattern>[01zZ]+)$")
_DEQ = re.compile(r"^deq\s+(?P<queues>.+)$")
_START = re.compile(r"^\.start\s+%p\s*=\s*(?P<pattern>[01]+)$")


def _parse_pred_pattern(pattern: str, num_preds: int, line: int) -> tuple[int, int]:
    """MSB-first pattern over {0,1,X} -> (on_mask, off_mask)."""
    if len(pattern) > num_preds:
        raise AssemblerError(
            f"predicate pattern {pattern!r} longer than NPreds = {num_preds}", line
        )
    on = off = 0
    for position, char in enumerate(reversed(pattern)):
        if char == "1":
            on |= 1 << position
        elif char == "0":
            off |= 1 << position
    return on, off


def _parse_set_pattern(pattern: str, num_preds: int, line: int) -> PredUpdate:
    """MSB-first pattern over {0,1,Z} -> PredUpdate masks."""
    if len(pattern) > num_preds:
        raise AssemblerError(
            f"set pattern {pattern!r} longer than NPreds = {num_preds}", line
        )
    set_mask = clear_mask = 0
    for position, char in enumerate(reversed(pattern)):
        if char == "1":
            set_mask |= 1 << position
        elif char == "0":
            clear_mask |= 1 << position
    return PredUpdate(set_mask=set_mask, clear_mask=clear_mask)


def _parse_source(token: str, line: int) -> tuple[Operand, int | None]:
    """Parse one source operand; returns (operand, immediate-or-None)."""
    if m := _REG.match(token):
        return Operand.reg(int(m.group(1))), None
    if m := _IN.match(token):
        return Operand.input_queue(int(m.group(1))), None
    if m := _IMM.match(token):
        return Operand.imm(), int(m.group(1), 0)
    raise AssemblerError(f"cannot parse source operand {token!r}", line)


def _parse_destination(token: str, line: int) -> Destination:
    if m := _REG.match(token):
        return Destination.reg(int(m.group(1)))
    if m := _PRED.match(token):
        return Destination.predicate(int(m.group(1)))
    if m := _OUT.match(token):
        return Destination.output_queue(int(m.group("queue")), int(m.group("tag")))
    raise AssemblerError(
        f"cannot parse destination {token!r} (expected %rN, %pN or %oN.T)", line
    )


def _split_operands(text: str) -> list[str]:
    return [t.strip() for t in text.split(",") if t.strip()]


class _BlockText:
    """One ``when`` block's text, joined from source fragments.

    Blocks may span several physical lines; joining them into one string
    simplifies parsing but loses source coordinates.  This wrapper keeps
    a fragment table so any character offset in the joined text maps
    back to its original (line, column) — the coordinates assembler
    errors and analyzer findings report.
    """

    def __init__(self, fragments: list[tuple[str, int, int]]) -> None:
        # fragments: (stripped text, 1-indexed line, 0-indexed indent)
        self.fragments = fragments
        self.text = " ".join(text for text, _, _ in fragments)
        self.starts: list[int] = []
        offset = 0
        for text, _, _ in fragments:
            self.starts.append(offset)
            offset += len(text) + 1   # the joining space

    @property
    def line(self) -> int:
        return self.fragments[0][1]

    def locate(self, offset: int) -> tuple[int, int]:
        """(line, column) of a character offset in the joined text."""
        index = 0
        for i, start in enumerate(self.starts):
            if offset >= start:
                index = i
        text, line, indent = self.fragments[index]
        within = min(max(offset - self.starts[index], 0), len(text))
        return line, indent + within + 1


class _BlockParser:
    """Parses one ``when ...: actions`` block into an Instruction."""

    def __init__(self, params: ArchParams, block: _BlockText, index: int) -> None:
        self.params = params
        self.block = block
        self.line, self.column = block.line, block.locate(0)[1]
        self.index = index
        self.op = None
        self.srcs: tuple[Operand, ...] = ()
        self.dst = Destination.none()
        self.imm = 0
        self.deq: tuple[int, ...] = ()
        self.pred_update = PredUpdate()
        # Coordinates of the action currently being parsed, so errors
        # point at the offending action rather than the block head.
        self._at = (self.line, self.column)

    def parse_action(self, action: str, offset: int) -> None:
        self._at = self.block.locate(offset)
        line, column = self._at
        if m := _SET.match(action):
            if self.pred_update.touched:
                raise AssemblerError("duplicate 'set %p' action", line, column)
            self.pred_update = _parse_set_pattern(
                m.group("pattern"), self.params.num_preds, line
            )
            return
        if m := _DEQ.match(action):
            if self.deq:
                raise AssemblerError("duplicate 'deq' action", line, column)
            queues = []
            for token in _split_operands(m.group("queues")):
                qm = _IN.match(token)
                if not qm:
                    raise AssemblerError(
                        f"deq expects %iN operands, got {token!r}", line, column
                    )
                queues.append(int(qm.group(1)))
            self.deq = tuple(queues)
            return
        self._parse_datapath(action, line, column)

    def _parse_datapath(self, action: str, line: int, column: int) -> None:
        if self.op is not None:
            raise AssemblerError(
                "more than one datapath operation in an instruction", line, column
            )
        parts = action.split(None, 1)
        mnemonic = parts[0]
        try:
            op = op_by_name(mnemonic)
        except KeyError as exc:
            raise AssemblerError(str(exc), line, column) from None
        operands = _split_operands(parts[1]) if len(parts) > 1 else []

        expected = op.num_srcs + (1 if op.has_dst else 0)
        if len(operands) != expected:
            raise AssemblerError(
                f"{mnemonic!r} expects {expected} operand(s), got {len(operands)}",
                line, column,
            )

        srcs = []
        imm_seen = False
        if op.has_dst:
            self.dst = _parse_destination(operands[0], line)
            source_tokens = operands[1:]
        else:
            source_tokens = operands
        for token in source_tokens:
            operand, imm = _parse_source(token, line)
            if imm is not None:
                if imm_seen:
                    raise AssemblerError(
                        "at most one immediate per instruction", line, column
                    )
                imm_seen = True
                self.imm = imm & self.params.word_mask
            srcs.append(operand)
        self.op = op
        self.srcs = tuple(srcs)

    def build(self, trigger: Trigger) -> Instruction:
        if self.op is None:
            raise AssemblerError(
                "instruction block has no datapath operation",
                self.line, self.column,
            )
        ins = Instruction(
            trigger=trigger,
            dp=DatapathOp(
                op=self.op,
                srcs=self.srcs,
                dst=self.dst,
                imm=self.imm,
                deq=self.deq,
                pred_update=self.pred_update,
            ),
            valid=True,
            label=f"ins{self.index}@line{self.line}",
            line=self.line,
            column=self.column,
        )
        try:
            ins.validate(self.params)
        except Exception as exc:
            raise AssemblerError(str(exc), self.line, self.column) from exc
        return ins


def assemble(source: str, params: ArchParams = DEFAULT_PARAMS, name: str = "",
             path: str | None = None) -> Program:
    """Assemble triggered-instruction source into a :class:`Program`."""
    # Strip comments while remembering source line numbers.
    lines = [( _COMMENT.sub("", raw).rstrip(), number + 1)
             for number, raw in enumerate(source.splitlines())]

    initial_predicates = 0
    # Collect directives and gather the rest as (text, line, indent)
    # fragments; the indent survives so columns map back to the file.
    body: list[tuple[str, int, int]] = []
    for text, number in lines:
        stripped = text.strip()
        if not stripped:
            continue
        if stripped.startswith(".start"):
            m = _START.match(stripped)
            if not m:
                raise AssemblerError(f"malformed directive {stripped!r}", number)
            pattern = m.group("pattern")
            if len(pattern) > params.num_preds:
                raise AssemblerError(
                    f".start pattern longer than NPreds = {params.num_preds}", number
                )
            initial_predicates = int(pattern, 2)
            continue
        if stripped.startswith("."):
            raise AssemblerError(f"unknown directive {stripped.split()[0]!r}", number)
        body.append((stripped, number, len(text) - len(text.lstrip())))

    # Split the body into 'when' blocks of source fragments.
    blocks: list[_BlockText] = []
    current: list[tuple[str, int, int]] = []
    for fragment in body:
        text, number, _ = fragment
        if text.startswith("when"):
            if current:
                blocks.append(_BlockText(current))
            current = [fragment]
        else:
            if not current:
                raise AssemblerError(
                    f"statement before any 'when' guard: {text!r}", number
                )
            current.append(fragment)
    if current:
        blocks.append(_BlockText(current))
    if not blocks:
        raise AssemblerError("program contains no instructions")

    instructions = []
    for index, block in enumerate(blocks):
        line = block.line
        m = _WHEN.match(block.text)
        if not m:
            raise AssemblerError(f"malformed guard: {block.text[:60]!r}", line)
        on, off = _parse_pred_pattern(m.group("pattern"), params.num_preds, line)
        checks = []
        if m.group("checks"):
            for token in _split_operands(m.group("checks")):
                cm = _CHECK.match(token)
                if not cm:
                    raise AssemblerError(
                        f"cannot parse trigger check {token!r} (expected %iN.T or %iN.!T)",
                        line, block.locate(m.start("checks"))[1],
                    )
                checks.append(
                    TagCheck(
                        queue=int(cm.group("queue")),
                        tag=int(cm.group("tag")),
                        negate=cm.group("neg") is not None,
                    )
                )
        trigger = Trigger(pred_on=on, pred_off=off, tag_checks=tuple(checks))

        parser = _BlockParser(params, block, index)
        offset = m.end()
        for piece in block.text[m.end():].split(";"):
            action = piece.strip()
            if action:
                parser.parse_action(action, offset + piece.index(action[0]))
            offset += len(piece) + 1
        instructions.append(parser.build(trigger))

    if len(instructions) > params.num_instructions:
        raise AssemblerError(
            f"program has {len(instructions)} instructions but the PE holds "
            f"only NIns = {params.num_instructions}"
        )
    return Program(
        instructions=instructions,
        initial_predicates=initial_predicates,
        name=name,
        source=source,
        path=path,
    )


def assemble_file(path: str, params: ArchParams = DEFAULT_PARAMS) -> Program:
    """Assemble a ``.s`` file from disk."""
    with open(path, encoding="utf-8") as handle:
        return assemble(handle.read(), params, name=path, path=path)
