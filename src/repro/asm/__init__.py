"""Assembler for the triggered-instruction assembly language."""

from repro.asm.program import Program
from repro.asm.assembler import assemble, assemble_file

__all__ = ["Program", "assemble", "assemble_file"]
