"""Disassembler: instructions (or binaries) back to assembly text.

Completes the toolchain loop: any program assembled by
:mod:`repro.asm.assembler` (or decoded from a binary) can be rendered
back to source that re-assembles to the identical encoding — verified by
round-trip tests.  The output is also the debug view used by the trace
tooling.
"""

from __future__ import annotations

from repro.isa.encoding import decode_program
from repro.isa.instruction import (
    DestinationType,
    Instruction,
    OperandType,
)
from repro.params import ArchParams, DEFAULT_PARAMS


def _pred_pattern(on: int, off: int, num_preds: int) -> str:
    chars = []
    for bit in reversed(range(num_preds)):
        if (on >> bit) & 1:
            chars.append("1")
        elif (off >> bit) & 1:
            chars.append("0")
        else:
            chars.append("X")
    return "".join(chars)


def _set_pattern(set_mask: int, clear_mask: int, num_preds: int) -> str:
    chars = []
    for bit in reversed(range(num_preds)):
        if (set_mask >> bit) & 1:
            chars.append("1")
        elif (clear_mask >> bit) & 1:
            chars.append("0")
        else:
            chars.append("Z")
    return "".join(chars)


def _source_text(operand, imm: int) -> str:
    if operand.kind is OperandType.REG:
        return f"%r{operand.index}"
    if operand.kind is OperandType.IN:
        return f"%i{operand.index}"
    if operand.kind is OperandType.IMM:
        return f"${imm}"
    raise ValueError(f"source operand of kind {operand.kind} has no syntax")


def _destination_text(dst) -> str:
    if dst.kind is DestinationType.REG:
        return f"%r{dst.index}"
    if dst.kind is DestinationType.OUT:
        return f"%o{dst.index}.{dst.out_tag}"
    if dst.kind is DestinationType.PRED:
        return f"%p{dst.index}"
    raise ValueError(f"destination of kind {dst.kind} has no syntax")


def disassemble_instruction(ins: Instruction, params: ArchParams = DEFAULT_PARAMS) -> str:
    """One instruction as a two-line ``when ...:`` block."""
    if not ins.valid:
        return "# (empty slot)"
    guard = f"when %p == {_pred_pattern(ins.trigger.pred_on, ins.trigger.pred_off, params.num_preds)}"
    if ins.trigger.tag_checks:
        checks = ", ".join(
            f"%i{check.queue}.{'!' if check.negate else ''}{check.tag}"
            for check in ins.trigger.tag_checks
        )
        guard += f" with {checks}"
    guard += ":"

    dp = ins.dp
    actions = []
    op_text = dp.op.mnemonic
    operands = []
    if dp.op.has_dst:
        operands.append(_destination_text(dp.dst))
    operands += [_source_text(src, dp.imm) for src in dp.srcs[: dp.op.num_srcs]]
    if operands:
        op_text += " " + ", ".join(operands)
    actions.append(op_text)
    update = dp.pred_update
    if update.touched:
        actions.append(
            f"set %p = {_set_pattern(update.set_mask, update.clear_mask, params.num_preds)}"
        )
    if dp.deq:
        actions.append("deq " + ", ".join(f"%i{queue}" for queue in dp.deq))
    return guard + "\n    " + "; ".join(actions) + ";"


def disassemble(
    instructions: list[Instruction],
    params: ArchParams = DEFAULT_PARAMS,
    initial_predicates: int = 0,
) -> str:
    """A whole program as re-assemblable source text."""
    lines = []
    if initial_predicates:
        lines.append(
            ".start %p = " + format(initial_predicates, f"0{params.num_preds}b")
        )
        lines.append("")
    for ins in instructions:
        lines.append(disassemble_instruction(ins, params))
        lines.append("")
    return "\n".join(lines)


def disassemble_binary(blob: bytes, params: ArchParams = DEFAULT_PARAMS) -> str:
    """Disassemble an encoded ``program.bin``."""
    return disassemble(decode_program(blob, params), params)
