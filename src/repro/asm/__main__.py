"""Assembler command-line driver.

Usage::

    python -m repro.asm program.s -o program.bin [--params params.txt]
    python -m repro.asm --disassemble program.bin [--params params.txt]
    python -m repro.asm --check program.s

Mirrors the paper's standalone assembler: the parameter file configures
the target machine, the output is the padded binary the host writes into
the PE's instruction memory.
"""

from __future__ import annotations

import argparse
import sys

from repro.asm.assembler import assemble_file
from repro.asm.disassembler import disassemble_binary
from repro.errors import ReproError
from repro.params import DEFAULT_PARAMS
from repro.toolchain.params_file import load_params


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.asm",
        description="Assemble (or disassemble) triggered-instruction programs.",
    )
    parser.add_argument("input", help="source file (.s) or binary (.bin)")
    parser.add_argument("-o", "--output", help="output binary path")
    parser.add_argument("--params", help="parameter file (defaults to Table 1)")
    parser.add_argument(
        "--disassemble", action="store_true",
        help="treat the input as a binary and print its assembly",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="assemble and report, without writing a binary",
    )
    args = parser.parse_args(argv)

    try:
        params = load_params(args.params) if args.params else DEFAULT_PARAMS
        if args.disassemble:
            with open(args.input, "rb") as handle:
                print(disassemble_binary(handle.read(), params))
            return 0
        program = assemble_file(args.input, params)
        blob = program.binary(params)
        if args.check or not args.output:
            print(
                f"{args.input}: {len(program)} instructions, "
                f"{len(blob)} bytes encoded, "
                f"initial predicates {program.initial_predicates:#04x}"
            )
            return 0
        with open(args.output, "wb") as handle:
            handle.write(blob)
        print(f"wrote {len(blob)} bytes to {args.output}")
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
