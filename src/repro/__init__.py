"""repro — a reproduction of "Pipelining a Triggered Processing Element"
(Repetti, Cerqueira, Kim, Seok; MICRO-50, 2017).

The package provides the paper's full stack:

* :mod:`repro.isa` / :mod:`repro.asm` — the triggered integer ISA and
  its assembler;
* :mod:`repro.arch` — architectural state and the functional simulator;
* :mod:`repro.pipeline` — cycle-accurate pipelined PE models with the
  predicate-prediction (+P) and effective-queue-status (+Q) hazard
  mitigations;
* :mod:`repro.fabric` — multi-PE systems with queue-endpoint memory;
* :mod:`repro.workloads` — the ten Table 3 microbenchmarks;
* :mod:`repro.vlsi` / :mod:`repro.dse` — the calibrated 65 nm
  energy-delay model and the >4,000-point design-space exploration;
* :mod:`repro.eval` — regeneration of every table and figure.

Quickstart::

    from repro import assemble, FunctionalPE, System

    pe = FunctionalPE(name="adder")
    assemble('''
        when %p == XXXXXXX0 with %i0.0:
            add %r0, %r0, %i0; deq %i0;
        when %p == XXXXXXX0 with %i0.1:
            add %r0, %r0, %i0; deq %i0; set %p = ZZZZZZZ1;
        when %p == XXXXXXX1:
            halt;
    ''').configure(pe)
"""

from repro.params import ArchParams, DEFAULT_PARAMS
from repro.asm import assemble, Program
from repro.arch import FunctionalPE
from repro.fabric import System, Memory
from repro.pipeline import PipelinedPE, PipelineConfig, QueuePolicy, all_configs, config_by_name
from repro.workloads import WORKLOADS, get_workload, run_workload

__version__ = "1.0.0"

__all__ = [
    "ArchParams",
    "DEFAULT_PARAMS",
    "assemble",
    "Program",
    "FunctionalPE",
    "System",
    "Memory",
    "PipelinedPE",
    "PipelineConfig",
    "QueuePolicy",
    "all_configs",
    "config_by_name",
    "WORKLOADS",
    "get_workload",
    "run_workload",
    "__version__",
]
