"""Fast-path vs reference cross-checking.

The compiled trigger/datapath fast path and the memoized scheduler
(PR 1) are held bit-identical to the original dataclass walk by the
equivalence test suite; this module makes the same check available *on
demand* — as a campaign gate, a CI tripwire, and a debugging tool when a
simulation result looks wrong.  It runs one workload twice on the same
microarchitecture, once with ``fast_path=True`` and once with
``fast_path=False``, and compares every piece of architecturally visible
final state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DivergenceError
from repro.params import ArchParams, DEFAULT_PARAMS
from repro.pipeline.config import PipelineConfig
from repro.pipeline.core import PipelinedPE
from repro.workloads.suite import run_workload


@dataclass
class DivergenceReport:
    """Field-by-field comparison of fast-path and reference runs."""

    config: str
    workload: str
    mismatches: list[str] = field(default_factory=list)

    @property
    def diverged(self) -> bool:
        return bool(self.mismatches)

    def raise_if_diverged(self) -> None:
        if self.diverged:
            raise DivergenceError(
                f"fast path diverged from reference on {self.workload!r} "
                f"({self.config}): " + "; ".join(self.mismatches)
            )


def _final_state(run) -> dict:
    worker = run.system.pe(run.worker_name)
    counters = run.worker_counters
    return {
        "cycles": run.cycles,
        "worker_cycles": counters.cycles,
        "retired": counters.retired,
        "issued": getattr(counters, "issued", None),
        "stack": counters.stack() if hasattr(counters, "stack") else None,
        "registers": tuple(worker.regs.snapshot()),
        "predicates": worker.preds.state,
        "memory_stores": run.system.memory.stores,
    }


def check_divergence(
    config: PipelineConfig,
    workload: str,
    scale: int = 8,
    seed: int = 0,
    params: ArchParams = DEFAULT_PARAMS,
) -> DivergenceReport:
    """Run ``workload`` twice (fast and reference) and diff final state.

    Both runs also validate against the workload's golden model inside
    ``run_workload``, so a divergence that happens to corrupt both runs
    identically is still caught there.
    """
    report = DivergenceReport(config=config.name, workload=workload)
    states = {}
    for fast in (True, False):
        def factory(name: str, _fast=fast) -> PipelinedPE:
            return PipelinedPE(config, params, name=name, fast_path=_fast)

        run = run_workload(
            workload, make_pe=factory, scale=scale, seed=seed, params=params
        )
        states[fast] = _final_state(run)
    for key, fast_value in states[True].items():
        ref_value = states[False][key]
        if fast_value != ref_value:
            report.mismatches.append(
                f"{key}: fast={fast_value!r} reference={ref_value!r}"
            )
    return report


def assert_no_divergence(
    configs: list[PipelineConfig],
    workloads: list[str],
    scale: int = 8,
    seed: int = 0,
    params: ArchParams = DEFAULT_PARAMS,
) -> list[DivergenceReport]:
    """Cross-check a config x workload grid; raise on the first divergence."""
    reports = []
    for config in configs:
        for workload in workloads:
            report = check_divergence(config, workload, scale, seed, params)
            report.raise_if_diverged()
            reports.append(report)
    return reports
