"""Resilience layer: fault injection, invariant checking, forensics.

Three pillars (see the module docstrings for detail):

* :mod:`repro.resilience.faults` — deterministic, seeded fault
  injection into functional and pipelined PEs;
* :mod:`repro.resilience.invariants` /
  :mod:`repro.resilience.forensics` /
  :mod:`repro.resilience.divergence` — runtime invariant checking, the
  deadlock watchdog's structured dumps, and fast-path-vs-reference
  cross-checking;
* :mod:`repro.resilience.campaign` — seeded campaigns classifying
  which fault classes each microarchitecture detects, masks, or
  silently corrupts under.

Run ``python -m repro.resilience --smoke`` for the CI gate: a small
campaign checked for bit-identical results across worker counts, plus a
fast-path divergence sweep.
"""

from repro.resilience.campaign import (
    DEFAULT_CONFIGS,
    DEFAULT_FAULTS,
    FaultTrial,
    TrialResult,
    fault_campaign,
    format_summary,
    run_trial,
    summarize,
)
from repro.resilience.divergence import (
    DivergenceReport,
    assert_no_divergence,
    check_divergence,
)
from repro.resilience.faults import (
    ALL_FAULT_CLASSES,
    FaultClass,
    FaultInjector,
    FaultSpec,
    inject,
    plan_faults,
)
from repro.resilience.forensics import forensic_report, format_report
from repro.resilience.invariants import InvariantChecker

__all__ = [
    "ALL_FAULT_CLASSES",
    "DEFAULT_CONFIGS",
    "DEFAULT_FAULTS",
    "DivergenceReport",
    "FaultClass",
    "FaultInjector",
    "FaultSpec",
    "FaultTrial",
    "InvariantChecker",
    "TrialResult",
    "assert_no_divergence",
    "check_divergence",
    "fault_campaign",
    "forensic_report",
    "format_report",
    "format_summary",
    "inject",
    "plan_faults",
    "run_trial",
    "summarize",
]
