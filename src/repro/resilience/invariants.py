"""Runtime architectural invariant checking (opt-in, per cycle).

The pipelined PE maintains redundant state — speculation records, the
scheduler-visible queue bookkeeping, staged queue entries — whose
consistency the normal execution path assumes rather than checks.  This
module makes those assumptions executable:

* **queue physics** — live + staged entries never exceed capacity;
* **predicate range** — the predicate word stays within ``NPreds`` bits;
* **non-nested speculation** — outstanding speculations never exceed the
  configured ``speculative_depth``, and every speculation's owner is
  still in flight (a speculation that outlives its owner can never be
  resolved: a rollback-completeness failure);
* **queue-status bookkeeping** — ``pending_deqs`` / ``sched_deqs`` /
  ``pending_enqs`` exactly match a recount over the pipeline registers;
* **queue-status conservatism** — no view ever reports more input
  tokens or output space than the physical queues minus in-flight
  claims can honor (the paper's safety argument for +Q, Section 5.3);
* **enqueue completeness** — every in-flight enqueue has a physical
  slot to land in, so retirement can never overflow a queue.

Attach a checker to a system (``system.attach_invariant_checker``) to
run every cycle boundary, or call :meth:`InvariantChecker.check_pe`
directly from tests.  Violations raise
:class:`~repro.errors.InvariantViolation` with PE/cycle attribution.
"""

from __future__ import annotations

from repro.errors import InvariantViolation, attribute_error


class InvariantChecker:
    """Per-cycle checker over the speculation/queue/predicate invariants.

    ``checks`` counts invocations so tests can assert the checker
    actually ran; ``violations`` retains every message raised (useful
    when a campaign catches the exception and wants the detail later).
    """

    def __init__(self) -> None:
        self.checks = 0
        self.violations: list[str] = []

    # ------------------------------------------------------------------

    def check_system(self, system) -> None:
        """Check every PE; called by ``System.step`` at cycle boundaries."""
        for pe in system.pes:
            self.check_pe(pe, cycle=system.cycles)

    def check_pe(self, pe, cycle: int | None = None) -> None:
        self.checks += 1
        try:
            self._check_queues(pe)
            self._check_predicates(pe)
            if hasattr(pe, "_specs"):
                self._check_speculation(pe)
                self._check_bookkeeping(pe)
                self._check_conservatism(pe)
        except InvariantViolation as exc:
            self.violations.append(str(exc))
            raise attribute_error(exc, pe.name, cycle) from exc

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------

    def _check_queues(self, pe) -> None:
        for queue in list(pe.inputs) + list(pe.outputs):
            held = queue.occupancy + len(queue._staged)
            if held > queue.capacity:
                raise InvariantViolation(
                    f"queue {queue.name!r} holds {held} entries "
                    f"(capacity {queue.capacity})"
                )

    def _check_predicates(self, pe) -> None:
        mask = (1 << pe.params.num_preds) - 1
        if pe.preds.state & ~mask:
            raise InvariantViolation(
                f"predicate state {pe.preds.state:#x} exceeds "
                f"NPreds = {pe.params.num_preds}"
            )

    def _check_speculation(self, pe) -> None:
        if len(pe._specs) > pe._spec_depth:
            raise InvariantViolation(
                f"{len(pe._specs)} outstanding speculations exceed "
                f"speculative_depth = {pe._spec_depth}"
            )
        in_flight = {
            entry.seq for entry in pe._pipe if entry is not None
        }
        for spec in pe._specs:
            if spec.owner_seq not in in_flight:
                raise InvariantViolation(
                    f"speculation on %p{spec.pred_index} outlived its owner "
                    f"(seq {spec.owner_seq}): rollback can never resolve it"
                )

    def _check_bookkeeping(self, pe) -> None:
        state = pe._queue_state
        pending_deqs = [0] * len(state.pending_deqs)
        sched_deqs = [0] * len(state.sched_deqs)
        pending_enqs = [0] * len(state.pending_enqs)
        for entry in pe._pipe:
            if entry is None:
                continue
            for queue in entry.meta.deq:
                sched_deqs[queue] += 1
                if not entry.captured:
                    pending_deqs[queue] += 1
            out = entry.meta.out_queue
            if out >= 0:
                pending_enqs[out] += 1
        for label, stored, recount in (
            ("pending_deqs", state.pending_deqs, pending_deqs),
            ("sched_deqs", state.sched_deqs, sched_deqs),
            ("pending_enqs", state.pending_enqs, pending_enqs),
        ):
            if list(stored) != recount:
                raise InvariantViolation(
                    f"queue bookkeeping {label} = {list(stored)} disagrees "
                    f"with pipeline recount {recount}"
                )

    def _check_conservatism(self, pe) -> None:
        """No status view may overpromise against physical queue state.

        Valid at cycle boundaries (no staged entries on PE-owned
        queues), which is when the system invokes the checker.
        """
        state = pe._queue_state
        view = pe._view
        for index, queue in enumerate(pe.inputs):
            claimed = view.input_count(index)
            available = queue.occupancy - state.pending_deqs[index]
            if claimed > max(0, available):
                raise InvariantViolation(
                    f"queue-status view promises {claimed} tokens on "
                    f"{queue.name!r} but only {available} are unclaimed"
                )
        for index, queue in enumerate(pe.outputs):
            if state.pending_enqs[index] > queue.free_slots:
                raise InvariantViolation(
                    f"{state.pending_enqs[index]} in-flight enqueues to "
                    f"{queue.name!r} exceed its {queue.free_slots} free slots"
                )
            claimed = view.output_space(index)
            grantable = queue.free_slots - state.pending_enqs[index]
            if claimed > max(0, grantable):
                raise InvariantViolation(
                    f"queue-status view promises {claimed} slots on "
                    f"{queue.name!r} but only {grantable} are grantable"
                )
