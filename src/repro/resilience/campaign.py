"""Seeded fault-injection campaigns over the microarchitecture space.

For each (microarchitecture, fault class, workload, trial) cell the
campaign builds the workload's system, arms a deterministic
:class:`~repro.resilience.faults.FaultInjector` on the worker PE,
enables per-cycle invariant checking, runs under the deadlock watchdog,
and classifies the outcome:

* ``detected``  — an error or invariant fired during simulation;
* ``hung``      — the watchdog tripped (deadlock or timeout);
* ``corrupted`` — the run completed but the golden model disagrees
  (silent state corruption: the outcome the architecture must minimize);
* ``masked``    — faults landed yet the golden model still validates;
* ``not-applied`` — no planned fault found state to corrupt (e.g. a
  queue fault scheduled while all queues were empty).

Trials are pure functions of their task tuple, fanned out through
:func:`repro.parallel.resilient_map`, so a campaign is bit-identical
across runs and worker counts and survives killed workers; with a
checkpoint path it also resumes after interruption.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections import Counter
from dataclasses import dataclass

from repro.errors import DeadlockError, SimulationError
from repro.parallel import Checkpoint, resilient_map
from repro.pipeline.config import PipelineConfig, config_by_name
from repro.pipeline.core import PipelinedPE
from repro.resilience.faults import FaultClass, inject, plan_faults
from repro.resilience.invariants import InvariantChecker
from repro.workloads.suite import get_workload

DETECTED = "detected"
HUNG = "hung"
CORRUPTED = "corrupted"
MASKED = "masked"
NOT_APPLIED = "not-applied"

DEFAULT_FAULTS = (
    FaultClass.REG_BIT_FLIP,
    FaultClass.PRED_BIT_FLIP,
    FaultClass.QUEUE_TAG_FLIP,
    FaultClass.QUEUE_DROP,
    FaultClass.FORCE_MISPREDICT,
)

DEFAULT_CONFIGS = (
    "TDX",
    "T|DX +P",
    "TD|X +Q",
    "T|D|X1|X2 +P+Q",
)
"""Smoke-campaign microarchitectures: the single-cycle baseline plus
pipelines exercising +P alone, +Q alone, and both at full depth."""


@dataclass(frozen=True)
class FaultTrial:
    """One campaign cell; a pure function of these fields."""

    config: str
    workload: str
    fault: str            # FaultClass value (kept as str so it pickles/JSONs)
    trial: int
    scale: int
    seed: int
    faults_per_trial: int = 2
    window_cycles: int = 0   # 0: derive from a clean run's cycle count
    max_cycles: int = 400_000
    stall_limit: int = 4_000

    @property
    def key(self) -> str:
        return f"{self.config}/{self.workload}/{self.fault}/t{self.trial}"


@dataclass(frozen=True)
class TrialResult:
    """Outcome of one campaign cell."""

    config: str
    workload: str
    fault: str
    trial: int
    outcome: str
    detail: str
    faults_applied: int
    cycles: int | None


def run_trial(trial: FaultTrial) -> TrialResult:
    """Execute one fault-injection trial (module level so it pickles)."""
    workload = get_workload(trial.workload)
    config = config_by_name(trial.config)

    def factory(name: str) -> PipelinedPE:
        return PipelinedPE(config, workload.params, name=name)

    window = trial.window_cycles
    if window <= 0:
        # Injection cycles must fall inside the run to mean anything, so
        # measure a clean run first.  Its cycle count is a pure function
        # of (config, workload, scale, seed): determinism is preserved.
        clean = workload.build(factory, trial.scale, trial.seed)
        window = max(
            2,
            clean.run(
                max_cycles=trial.max_cycles, stall_limit=trial.stall_limit
            )
            - 1,
        )

    system = workload.build(factory, trial.scale, trial.seed)
    worker = system.pe(workload.worker_name)
    plan = plan_faults(
        FaultClass(trial.fault),
        trial.seed,
        key=trial.key,
        count=trial.faults_per_trial,
        window=(1, window),
    )
    injector = inject(worker, plan)
    system.attach_invariant_checker(InvariantChecker())

    def result(outcome: str, detail: str, cycles: int | None) -> TrialResult:
        return TrialResult(
            config=trial.config,
            workload=trial.workload,
            fault=trial.fault,
            trial=trial.trial,
            outcome=outcome,
            detail=detail,
            faults_applied=len(injector.applied),
            cycles=cycles,
        )

    try:
        cycles = system.run(
            max_cycles=trial.max_cycles, stall_limit=trial.stall_limit
        )
    except DeadlockError as exc:
        return result(HUNG, str(exc).splitlines()[0], None)
    except SimulationError as exc:
        return result(DETECTED, f"{type(exc).__name__}: {exc}", None)
    try:
        workload.check(system, trial.scale, trial.seed)
    except Exception as exc:
        return result(CORRUPTED, f"{type(exc).__name__}: {exc}", cycles)
    if injector.applied:
        return result(MASKED, "golden model validated despite faults", cycles)
    return result(NOT_APPLIED, "no planned fault found state to corrupt", cycles)


def campaign_fingerprint(tasks: list[FaultTrial]) -> str:
    """Digest of every input a checkpointed campaign depends on."""
    blob = json.dumps([dataclasses.astuple(task) for task in tasks])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def fault_campaign(
    configs=DEFAULT_CONFIGS,
    faults=DEFAULT_FAULTS,
    workloads=("gcd",),
    trials: int = 1,
    scale: int = 8,
    seed: int = 0,
    workers: int | None = None,
    checkpoint_path: str | None = None,
    service=None,
    **trial_kwargs,
) -> list[TrialResult]:
    """Run the full config x fault x workload x trial grid.

    ``configs`` accepts paper-style names or :class:`PipelineConfig`
    objects.  Results are in deterministic grid order regardless of
    worker count; with ``checkpoint_path`` an interrupted campaign
    resumes from its completed cells.

    ``service`` (a :mod:`repro.serve` client) runs the grid as
    ``fault-trial`` tasks on the supervised campaign service instead of
    a private pool — same results, plus durable-store dedup/resume and
    supervision against crashed or hung trial workers.
    """
    names = [
        config.name if isinstance(config, PipelineConfig) else config
        for config in configs
    ]
    tasks = [
        FaultTrial(
            config=name,
            workload=workload,
            fault=FaultClass(fault).value,
            trial=trial,
            scale=scale,
            seed=seed,
            **trial_kwargs,
        )
        for name in names
        for fault in faults
        for workload in workloads
        for trial in range(trials)
    ]
    if service is not None:
        return service.map(
            "fault-trial", [dataclasses.asdict(task) for task in tasks]
        )
    checkpoint = None
    if checkpoint_path:
        checkpoint = Checkpoint(
            checkpoint_path,
            fingerprint=campaign_fingerprint(tasks),
            encode=dataclasses.asdict,
            decode=lambda payload: TrialResult(**payload),
        )
    results = resilient_map(
        run_trial,
        tasks,
        workers,
        checkpoint=checkpoint,
        key=lambda task: task.key,
    )
    if checkpoint is not None:
        checkpoint.clear()
    return results


def summarize(results: list[TrialResult]) -> dict[tuple[str, str], Counter]:
    """Outcome counts per (microarchitecture, fault class)."""
    summary: dict[tuple[str, str], Counter] = {}
    for result in results:
        summary.setdefault((result.config, result.fault), Counter())[
            result.outcome
        ] += 1
    return summary


def format_summary(results: list[TrialResult]) -> str:
    """Render the detected-vs-masked table per microarchitecture."""
    summary = summarize(results)
    width = max((len(config) for config, _ in summary), default=6)
    lines = [
        f"{'config':<{width}}  {'fault':<18} {DETECTED:>9} {HUNG:>5} "
        f"{CORRUPTED:>10} {MASKED:>7} {NOT_APPLIED:>12}"
    ]
    for (config, fault), counts in sorted(summary.items()):
        lines.append(
            f"{config:<{width}}  {fault:<18} {counts[DETECTED]:>9} "
            f"{counts[HUNG]:>5} {counts[CORRUPTED]:>10} {counts[MASKED]:>7} "
            f"{counts[NOT_APPLIED]:>12}"
        )
    return "\n".join(lines)
