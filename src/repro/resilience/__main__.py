"""CLI: the resilience smoke gate run by CI on every push.

``python -m repro.resilience --smoke`` runs, at a small scale:

1. a fault-injection campaign over the default microarchitecture set
   (single-cycle, +P, +Q, and +P+Q at full depth), executed twice —
   serially and with two workers — and fails unless the two result
   lists are bit-identical (campaign determinism);
2. a fast-path vs reference divergence sweep over the same
   microarchitectures; any divergence fails the build.

Exit status is non-zero on any failure, so the gate works as a CI step
with no extra plumbing.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.pipeline.config import config_by_name
from repro.resilience.campaign import (
    DEFAULT_CONFIGS,
    DEFAULT_FAULTS,
    fault_campaign,
    format_summary,
)
from repro.resilience.divergence import assert_no_divergence


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="fault-injection smoke campaign + divergence gate",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the CI smoke gate (campaign determinism + divergence)",
    )
    parser.add_argument(
        "--scale", type=int,
        default=int(os.environ.get("REPRO_BENCH_SCALE", "8")),
        help="workload scale (default: REPRO_BENCH_SCALE or 8)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=2,
                        help="trials per campaign cell")
    parser.add_argument("--workloads", nargs="+", default=["gcd", "stream"])
    parser.add_argument("--checkpoint", default=None,
                        help="checkpoint file for campaign resume")
    args = parser.parse_args(argv)

    print(
        f"resilience gate: scale={args.scale} seed={args.seed} "
        f"trials={args.trials} workloads={args.workloads}"
    )

    print("\n[1/2] fault-injection campaign (serial vs 2 workers)...")
    common = dict(
        workloads=tuple(args.workloads),
        trials=args.trials,
        scale=args.scale,
        seed=args.seed,
        checkpoint_path=args.checkpoint,
    )
    serial = fault_campaign(workers=1, **common)
    pooled = fault_campaign(workers=2, **common)
    print(format_summary(serial))
    if serial != pooled:
        print("FAIL: campaign results differ between worker counts",
              file=sys.stderr)
        for left, right in zip(serial, pooled):
            if left != right:
                print(f"  serial: {left}\n  pooled: {right}", file=sys.stderr)
        return 1
    print(f"campaign deterministic across worker counts "
          f"({len(serial)} trials)")

    print("\n[2/2] fast-path vs reference divergence sweep...")
    configs = [config_by_name(name) for name in DEFAULT_CONFIGS]
    try:
        reports = assert_no_divergence(
            configs, args.workloads, scale=args.scale, seed=args.seed
        )
    except Exception as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(f"no divergence across {len(reports)} config x workload cells")

    detected = sum(r.outcome in ("detected", "hung") for r in serial)
    corrupted = sum(r.outcome == "corrupted" for r in serial)
    masked = sum(r.outcome == "masked" for r in serial)
    print(
        f"\nfault classes: {len(DEFAULT_FAULTS)}; "
        f"outcomes: {detected} detected/hung, {corrupted} silently "
        f"corrupted, {masked} masked (of {len(serial)} trials)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
