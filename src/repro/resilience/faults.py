"""Deterministic, seeded fault injection for triggered PEs.

The paper's two hazard mechanisms — predicate-prediction rollback
(Section 5.2) and effective queue status (Section 5.3) — are the logic
most likely to harbor silent state-corruption bugs.  This module turns
that concern into an experiment: flip register, predicate, and queue-tag
bits, drop or replay queue tokens, and force predictor mispredictions at
chosen cycles, then let the campaign layer classify whether each fault
class is *detected* (an error or invariant fires), *masked* (the golden
model still validates), *corrupted* (silent wrong answer), or *hung*.

Everything is derived from seeds via :func:`plan_faults`, so a campaign
is bit-identical across runs and worker counts.  Injectors attach to the
``fault_hook`` seam that both :class:`~repro.arch.functional.FunctionalPE`
and :class:`~repro.pipeline.core.PipelinedPE` call at the top of every
live cycle.
"""

from __future__ import annotations

import enum
import hashlib
import random
from dataclasses import dataclass


class FaultClass(enum.Enum):
    """The modeled upset classes."""

    REG_BIT_FLIP = "reg-bit-flip"          # register-file storage upset
    PRED_BIT_FLIP = "pred-bit-flip"        # predicate register upset
    QUEUE_TAG_FLIP = "queue-tag-flip"      # tag bits of a live queue entry
    QUEUE_VALUE_FLIP = "queue-value-flip"  # data bits of a live queue entry
    QUEUE_DROP = "queue-drop"              # a token silently lost
    QUEUE_DUP = "queue-dup"                # a token replayed
    FORCE_MISPREDICT = "force-mispredict"  # invert the next +P prediction


ALL_FAULT_CLASSES = tuple(FaultClass)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: what to corrupt, where, and when.

    ``cycle`` counts the target PE's local cycles (its ``counters.cycles``
    after the increment at the top of ``step``).  ``index`` selects the
    register / predicate / queue, ``bit`` the bit to flip; both are taken
    modulo the PE's actual parameters at apply time so one plan is valid
    for every microarchitecture.
    """

    fault: FaultClass
    cycle: int
    index: int = 0
    bit: int = 0


def _stable_seed(*parts) -> int:
    """Platform-stable integer seed from arbitrary key parts."""
    blob = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def plan_faults(
    fault: FaultClass,
    seed: int,
    key: str,
    count: int = 1,
    window: tuple[int, int] = (1, 2000),
) -> list[FaultSpec]:
    """Derive a deterministic fault plan for one campaign trial.

    ``key`` names the trial (config, workload, trial index, ...); the
    plan is a pure function of ``(fault, seed, key, count, window)``,
    which is what makes campaigns reproducible across worker counts.
    """
    rng = random.Random(_stable_seed(fault.value, seed, key, count, *window))
    lo, hi = window
    return [
        FaultSpec(
            fault=fault,
            cycle=rng.randint(lo, hi),
            index=rng.randrange(1 << 16),
            bit=rng.randrange(1 << 8),
        )
        for _ in range(count)
    ]


class FaultInjector:
    """Applies a fault plan to one PE through its ``fault_hook`` seam.

    ``applied`` records the faults that physically landed (a queue fault
    against an empty queue cannot land); ``log`` records every attempt
    with its outcome, for campaign accounting.
    """

    def __init__(self, specs: list[FaultSpec]) -> None:
        self.specs = sorted(specs, key=lambda spec: spec.cycle)
        self.applied: list[FaultSpec] = []
        self.log: list[tuple[FaultSpec, bool]] = []
        self._next = 0

    def arm(self, pe) -> None:
        """Attach to a PE (functional or pipelined)."""
        pe.fault_hook = self._fire

    def disarm(self, pe) -> None:
        # == not `is`: accessing a bound method builds a fresh object.
        if pe.fault_hook == self._fire:
            pe.fault_hook = None

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self.specs)

    def _fire(self, pe) -> None:
        cycle = pe.counters.cycles
        while self._next < len(self.specs) and self.specs[self._next].cycle <= cycle:
            spec = self.specs[self._next]
            self._next += 1
            landed = self._apply(pe, spec)
            self.log.append((spec, landed))
            if landed:
                self.applied.append(spec)

    # ------------------------------------------------------------------
    # Per-class application
    # ------------------------------------------------------------------

    def _apply(self, pe, spec: FaultSpec) -> bool:
        fault = spec.fault
        if fault is FaultClass.REG_BIT_FLIP:
            index = spec.index % pe.params.num_regs
            bit = spec.bit % pe.params.word_width
            pe.regs.write(index, pe.regs.read(index) ^ (1 << bit))
            return True
        if fault is FaultClass.PRED_BIT_FLIP:
            index = spec.index % pe.params.num_preds
            pe.preds.write_bit(index, pe.preds.read_bit(index) ^ 1)
            return True
        if fault is FaultClass.QUEUE_TAG_FLIP:
            queue = self._pick_queue(pe, spec)
            if queue is None:
                return False
            return queue.inject_tag_flip(0, spec.bit % pe.params.tag_width)
        if fault is FaultClass.QUEUE_VALUE_FLIP:
            queue = self._pick_queue(pe, spec)
            if queue is None:
                return False
            return queue.inject_value_flip(0, spec.bit % pe.params.word_width)
        if fault is FaultClass.QUEUE_DROP:
            queue = self._pick_queue(pe, spec)
            if queue is None:
                return False
            return queue.inject_drop(0)
        if fault is FaultClass.QUEUE_DUP:
            queue = self._pick_queue(pe, spec)
            if queue is None:
                return False
            return queue.inject_duplicate(0)
        if fault is FaultClass.FORCE_MISPREDICT:
            predictor = getattr(pe, "predictor", None)
            if predictor is None or not getattr(pe, "_predicts", False):
                return False
            predictor.force_invert_next = True
            return True
        raise ValueError(f"unknown fault class {fault!r}")

    @staticmethod
    def _pick_queue(pe, spec: FaultSpec):
        """Choose a *non-empty* queue near the indexed one, inputs first.

        Scanning from the indexed position keeps the choice deterministic
        while letting most planned queue faults land on real tokens.
        """
        queues = list(pe.inputs) + list(pe.outputs)
        if not queues:
            return None
        start = spec.index % len(queues)
        for offset in range(len(queues)):
            queue = queues[(start + offset) % len(queues)]
            if queue.occupancy:
                return queue
        return None


def inject(pe, specs: list[FaultSpec]) -> FaultInjector:
    """Convenience: build an injector for ``specs`` and arm it on ``pe``."""
    injector = FaultInjector(specs)
    injector.arm(pe)
    return injector
