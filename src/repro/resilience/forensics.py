"""Forensic state dumps for hang and corruption post-mortems.

A bare "deadlock" exception from a multi-PE campaign is useless at
production scale: the interesting question is always *which* PE is
starved, on *which* channel, with *what* in flight.
:func:`forensic_report` collects a structured snapshot of a
:class:`~repro.fabric.system.System` — per-PE predicate state, queue
occupancies with head and neck tags, in-flight pipeline registers,
outstanding speculations, the last-triggered instructions, and memory
port activity — and :func:`format_report` renders it for humans.  The
structured form rides on :class:`~repro.errors.DeadlockError` so
campaign tooling can aggregate hangs without parsing text.
"""

from __future__ import annotations


def _pe_report(pe) -> dict:
    """One PE's snapshot; PEs expose ``snapshot_state`` but any object
    with the PE interface degrades to a minimal generic dump."""
    snapshot = getattr(pe, "snapshot_state", None)
    if snapshot is not None:
        return snapshot()
    return {
        "name": pe.name,
        "model": type(pe).__name__,
        "halted": pe.halted,
        "retired": pe.counters.retired,
        "predicates": f"{pe.preds.state:b}",
        "inputs": [queue.snapshot() for queue in pe.inputs],
        "outputs": [queue.snapshot() for queue in pe.outputs],
    }


def forensic_report(system) -> dict:
    """Structured dump of a system's architectural and micro state."""
    report = {
        "cycle": system.cycles,
        "all_halted": system.all_halted,
        "pes": [_pe_report(pe) for pe in system.pes],
        "read_ports": [
            {
                "name": port.name,
                "idle": port.idle,
                "in_flight": len(port._in_flight),
                "request": None if port.request is None else port.request.snapshot(),
                "response": None if port.response is None else port.response.snapshot(),
            }
            for port in system.read_ports
        ],
        "write_ports": [
            {
                "name": port.name,
                "idle": port.idle,
                "stores_accepted": port.stores_accepted,
                "address": None if port.address is None else port.address.snapshot(),
                "data": None if port.data is None else port.data.snapshot(),
            }
            for port in system.write_ports
        ],
        "lsqs": [
            {"name": lsq.name, "idle": lsq.idle}
            for lsq in system.lsqs
        ],
    }
    # When the observability layer is attached, embed its aggregated
    # metrics snapshot so a hang post-mortem carries the same queue
    # timelines and hazard breakdowns a healthy run would report.
    if getattr(system, "telemetry", None) is not None:
        from repro.obs.metrics import MetricsRegistry

        report["metrics"] = MetricsRegistry.from_system(system).snapshot()
    return report


def _format_queue(prefix: str, queue: dict) -> str:
    parts = [f"occ={queue['occupancy']}/{queue['capacity']}"]
    if queue["staged"]:
        parts.append(f"staged={queue['staged']}")
    if queue["head"] is not None:
        parts.append(f"head=(v={queue['head'][0]}, tag={queue['head'][1]})")
    if queue["neck"] is not None:
        parts.append(f"neck=(v={queue['neck'][0]}, tag={queue['neck'][1]})")
    return f"    {prefix} {queue['name']}: {' '.join(parts)}"


def format_report(report: dict) -> str:
    """Human-readable rendering of :func:`forensic_report` output."""
    lines = [f"forensic dump at cycle {report['cycle']}:"]
    for pe in report["pes"]:
        line = (
            f"  {pe['name']} ({pe['model']}): halted={pe['halted']} "
            f"retired={pe['retired']} preds={pe['predicates']}"
        )
        if pe.get("speculations"):
            line += f" specs={len(pe['speculations'])}"
        lines.append(line)
        fires = pe.get("recent_fires")
        if fires:
            fired = ", ".join(f"c{cycle}:slot{slot}" for cycle, slot in fires)
            lines.append(f"    last triggered: {fired}")
        for entry in pe.get("pipeline") or []:
            if entry is None:
                continue
            lines.append(
                f"    pipe[{entry['stage']}]: slot {entry['slot']} "
                f"({entry['op']}) seq={entry['seq']} "
                f"captured={entry['captured']} ready={entry['result_ready']}"
            )
        for queue in pe["inputs"]:
            if queue["occupancy"] or queue["staged"]:
                lines.append(_format_queue("in ", queue))
        for queue in pe["outputs"]:
            if queue["occupancy"] or queue["staged"]:
                lines.append(_format_queue("out", queue))
    for port in report["read_ports"]:
        if not port["idle"]:
            lines.append(
                f"  {port['name']}: busy, {port['in_flight']} loads in flight"
            )
    for port in report["write_ports"]:
        if not port["idle"]:
            lines.append(f"  {port['name']}: store operands waiting")
    for lsq in report["lsqs"]:
        if not lsq["idle"]:
            lines.append(f"  {lsq['name']}: busy")
    metrics = report.get("metrics")
    if metrics is not None:
        aggregate = metrics["aggregate"]
        lines.append(
            f"  telemetry: {aggregate['retired']} retired across "
            f"{len(metrics['pes'])} PEs, "
            f"{len(metrics['queues'])} queues sampled "
            f"(full metrics snapshot embedded in the structured report)"
        )
    return "\n".join(lines)
