"""Durable, content-fingerprint-keyed result store.

This generalizes the ``.cpi_cache.json`` discipline into a real store:
every task a campaign executes is keyed by a sha256 fingerprint over its
``(kind, payload)`` content, and the result of executing it is written
durably — sqlite, one row per fingerprint, committed per put — before
the service acknowledges the task as done.  Three properties follow:

* **dedup** — identical ``(kind, payload)`` work submitted by different
  jobs (or twice within one job) executes once; later submissions are
  served from the store;
* **crash-safe resume** — a service killed mid-campaign (SIGKILL
  included) restarts with every previously landed result intact, and a
  resubmitted campaign executes only the tasks whose fingerprints are
  missing.  Sqlite's journal makes each put atomic: a row is either
  fully present or absent, never torn;
* **auditability** — the ``executions`` column counts how many result
  rows were ever recorded per fingerprint.  ``INSERT OR IGNORE``
  semantics keep it at 1 even if two racing processes execute the same
  task, so "zero duplicated trial executions recorded in the store" is
  checkable after a chaos run (:meth:`ResultStore.max_executions`).

A corrupt or truncated database file (torn by a mid-write power cut on
a non-atomic filesystem, or just garbage) is moved aside to
``<path>.corrupt`` and the store restarts empty rather than wedging the
service — the same tolerate-and-recover policy as
:class:`repro.parallel.Checkpoint`.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    kind        TEXT NOT NULL,
    payload     TEXT NOT NULL,
    result      TEXT NOT NULL,
    seconds     REAL NOT NULL,
    created     REAL NOT NULL,
    executions  INTEGER NOT NULL DEFAULT 1
);
"""

_MISSING = object()


def canonical_json(value) -> str:
    """Canonical encoding used for fingerprints and stored payloads."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def task_fingerprint(kind: str, payload) -> str:
    """Content fingerprint of one task: sha256 over ``(kind, payload)``.

    The payload is canonicalized (sorted keys, tight separators) so two
    dicts with different key orders fingerprint identically.
    """
    blob = f"{kind}\n{canonical_json(payload)}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultStore:
    """Sqlite-backed durable result store (``path=None`` for in-memory).

    Results are JSON values; encoding task-kind-specific Python objects
    to and from JSON is the task registry's job
    (:mod:`repro.serve.tasks`), so the store stays type-agnostic.
    """

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: Puts that found the fingerprint already present (a racing
        #: writer won); the duplicate result is discarded, not recorded.
        self.duplicate_puts = 0
        self.recovered_corrupt = False
        self._conn = self._connect()

    def _connect(self) -> sqlite3.Connection:
        target = self.path if self.path is not None else ":memory:"
        # check_same_thread=False: the store may be constructed on one
        # thread and pumped from another (e.g. the HTTP frontend's event
        # loop thread).  Access is serialized through the single service
        # pump, so sqlite never sees concurrent use of the connection.
        try:
            conn = sqlite3.connect(target, check_same_thread=False)
            conn.execute(_SCHEMA)
            conn.commit()
            return conn
        except sqlite3.DatabaseError:
            # Torn/garbage file: preserve it for forensics, start fresh.
            if self.path is None:
                raise
            self.recovered_corrupt = True
            try:
                os.replace(self.path, self.path + ".corrupt")
            except OSError:
                os.unlink(self.path)
            conn = sqlite3.connect(self.path, check_same_thread=False)
            conn.execute(_SCHEMA)
            conn.commit()
            return conn

    # ------------------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def get(self, fingerprint: str, default=_MISSING):
        """Stored (JSON-decoded) result for a fingerprint."""
        row = self._conn.execute(
            "SELECT result FROM results WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is None:
            self.misses += 1
            if default is _MISSING:
                raise KeyError(fingerprint)
            return default
        self.hits += 1
        return json.loads(row[0])

    def put(self, fingerprint: str, kind: str, payload, result,
            seconds: float = 0.0) -> bool:
        """Durably record one executed task's result.

        Returns ``True`` when the row was inserted, ``False`` when the
        fingerprint was already present (the stored result wins — first
        writer take all, so the executions count never inflates).
        """
        self.puts += 1
        cursor = self._conn.execute(
            "INSERT OR IGNORE INTO results "
            "(fingerprint, kind, payload, result, seconds, created) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                kind,
                canonical_json(payload),
                canonical_json(result),
                float(seconds),
                time.time(),
            ),
        )
        self._conn.commit()
        inserted = cursor.rowcount == 1
        if not inserted:
            self.duplicate_puts += 1
        return inserted

    def executions(self, fingerprint: str) -> int:
        """Recorded executions for a fingerprint (0 when absent)."""
        row = self._conn.execute(
            "SELECT executions FROM results WHERE fingerprint = ?",
            (fingerprint,),
        ).fetchone()
        return 0 if row is None else int(row[0])

    def max_executions(self) -> int:
        """Highest recorded execution count over the whole store.

        1 on a healthy store of any size — the chaos gate's dedup
        assertion; 0 when empty.
        """
        row = self._conn.execute(
            "SELECT COALESCE(MAX(executions), 0) FROM results"
        ).fetchone()
        return int(row[0])

    def executions_total(self) -> int:
        """Sum of recorded executions over the whole store.

        Equals ``rows`` on a healthy store (every fingerprint executed
        exactly once) — the audit the ``/stats`` health check reads
        without a separate sqlite query.
        """
        row = self._conn.execute(
            "SELECT COALESCE(SUM(executions), 0) FROM results"
        ).fetchone()
        return int(row[0])

    def seconds_total(self) -> float:
        """Total recorded execute seconds across all stored results."""
        row = self._conn.execute(
            "SELECT COALESCE(SUM(seconds), 0.0) FROM results"
        ).fetchone()
        return float(row[0])

    def kinds(self) -> dict[str, int]:
        """Stored row count per task kind."""
        return dict(
            self._conn.execute(
                "SELECT kind, COUNT(*) FROM results GROUP BY kind"
            ).fetchall()
        )

    def stats(self) -> dict:
        """JSON-ready store health snapshot."""
        return {
            "path": self.path,
            "rows": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "duplicate_puts": self.duplicate_puts,
            "max_executions": self.max_executions(),
            "executions_total": self.executions_total(),
            "seconds_total": self.seconds_total(),
            "recovered_corrupt": self.recovered_corrupt,
            "kinds": self.kinds(),
        }

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
