"""Supervised worker pool: health checks, kill/respawn, retry, quarantine.

:func:`repro.parallel.resilient_map` hardens one *batch*; a service
needs a pool that outlives any batch and any individual worker.  The
:class:`Supervisor` owns N forked worker processes, each with a private
inbox/outbox pair (``multiprocessing.SimpleQueue``), and is pumped by a
non-blocking :meth:`Supervisor.poll` from the service's asyncio loop —
every poll drains results, reaps crashed workers, kills workers whose
in-flight task blew its deadline, respawns capacity, promotes
backed-off retries, and dispatches ready tasks to idle workers.

Failure taxonomy (the part tests pin down):

* **task exception** — deterministic campaign input; the task fails
  *immediately* with the worker's traceback (same no-retry policy as
  ``resilient_map``), and the worker stays healthy;
* **worker crash** — the process died (``os._exit``, segfault, OOM
  kill) with a task in flight; the task retries on a fresh worker after
  a capped, deterministically jittered exponential backoff
  (:func:`repro.parallel.retry_delay`);
* **hung worker** — the in-flight task exceeded ``task_timeout``; the
  worker is SIGKILLed and respawned, and the task retries like a crash;
* **poison task** — a task that crashed/hung workers
  ``max_task_failures`` times is *quarantined*: it stops consuming pool
  capacity and surfaces a forensic report (attempt history, plus the
  structured :class:`~repro.errors.DeadlockError` report when the
  failure carried one) instead of wedging the campaign;
* **pool unavailable** — worker processes cannot be spawned at all
  (restricted sandboxes); the supervisor degrades to in-process serial
  execution and the campaign still completes.

Per-worker queues (not one shared pair) are deliberate: killing a
worker can tear a message mid-write, and private queues make the blast
radius exactly that worker — its queues are discarded with it.
"""

from __future__ import annotations

import collections
import contextlib
import heapq
import multiprocessing
import time
import traceback

from repro.parallel import retry_delay
from repro.serve import tasks as task_registry

#: Worker -> supervisor message tag.
_DONE = "done"


def _worker_main(worker_id: int, inbox, outbox) -> None:
    """Worker process loop: execute tasks from the inbox until ``None``.

    Messages are 3-tuples ``(task_id, kind, payload)`` on an
    uninstrumented pool; with a :class:`~repro.obs.svc.ServiceObs`
    attached a 4th element carries trace context (``{"trace", "span",
    "sim"}``) and the reply grows a matching 6th element with the
    worker-side monotonic window (comparable across ``fork`` on Linux —
    CLOCK_MONOTONIC is system-wide) plus the optional simulator
    stage-track payload.  The byte format of the uninstrumented flow is
    untouched.
    """
    while True:
        message = inbox.get()
        if message is None:
            return
        if len(message) == 4:
            task_id, kind, payload, ctx = message
        else:
            task_id, kind, payload = message
            ctx = None
        start = time.perf_counter()
        started_mono = time.monotonic() if ctx is not None else 0.0
        try:
            sim = None
            if ctx is not None and ctx.get("sim"):
                result, sim = task_registry.execute_traced(kind, payload)
            else:
                result = task_registry.execute(kind, payload)
            seconds = time.perf_counter() - start
            if ctx is None:
                outbox.put((_DONE, task_id, True, result, seconds))
            else:
                outbox.put((_DONE, task_id, True, result, seconds, {
                    "start": started_mono, "end": time.monotonic(),
                    "sim": sim,
                }))
        except Exception as exc:
            # DeadlockError-style exceptions carry a structured forensic
            # report; ride it back for the quarantine/failure record.
            report = getattr(exc, "report", None)
            error = (
                type(exc).__name__,
                str(exc),
                traceback.format_exc(),
                report if isinstance(report, dict) else None,
            )
            seconds = time.perf_counter() - start
            if ctx is None:
                outbox.put((_DONE, task_id, False, error, seconds))
            else:
                outbox.put((_DONE, task_id, False, error, seconds, {
                    "start": started_mono, "end": time.monotonic(),
                    "sim": None,
                }))


class SupervisedTask:
    """One unit of work moving through the pool."""

    __slots__ = (
        "task_id", "kind", "payload", "fingerprint",
        "attempts", "failures", "submitted_at",
        "trace_id", "span_id", "queue_span", "enqueued_at",
    )

    def __init__(self, task_id: str, kind: str, payload: dict,
                 fingerprint: str, trace_id: str | None = None,
                 span_id: str | None = None) -> None:
        self.task_id = task_id
        self.kind = kind
        self.payload = payload
        self.fingerprint = fingerprint
        self.attempts = 0
        #: Attempt-history records for the forensic report.
        self.failures: list[dict] = []
        self.submitted_at: float | None = None
        #: Trace context (set by the service when obs is attached); the
        #: span is the parent ``task`` span the pool's spans nest under.
        self.trace_id = trace_id
        self.span_id = span_id
        self.queue_span = None
        self.enqueued_at: float | None = None


class TaskOutcome:
    """Terminal state of one supervised task."""

    __slots__ = ("task", "status", "result", "error", "seconds", "forensic")

    DONE = "done"
    FAILED = "failed"            # deterministic task exception
    QUARANTINED = "quarantined"  # poison task: killed/hung too many workers

    def __init__(self, task: SupervisedTask, status: str, result=None,
                 error: tuple | None = None, seconds: float = 0.0,
                 forensic: dict | None = None) -> None:
        self.task = task
        self.status = status
        self.result = result
        self.error = error
        self.seconds = seconds
        self.forensic = forensic


class _Worker:
    """One supervised worker process plus its private queue pair."""

    __slots__ = ("worker_id", "process", "inbox", "outbox",
                 "current", "deadline", "span")

    def __init__(self, worker_id: int, ctx) -> None:
        self.worker_id = worker_id
        self.inbox = ctx.SimpleQueue()
        self.outbox = ctx.SimpleQueue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.inbox, self.outbox),
            daemon=True,
            name=f"repro-serve-worker-{worker_id}",
        )
        self.current: SupervisedTask | None = None
        self.deadline: float | None = None
        #: Open ``execute`` span for the in-flight task (obs only).
        self.span = None

    @property
    def idle(self) -> bool:
        return self.current is None

    def close_queues(self) -> None:
        for queue in (self.inbox, self.outbox):
            with contextlib.suppress(OSError):
                queue.close()


class Supervisor:
    """Health-checked worker pool with retry, quarantine, and fallback."""

    def __init__(
        self,
        workers: int = 2,
        *,
        task_timeout: float = 60.0,
        max_task_failures: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        seed: int = 0,
        telemetry=None,
        obs=None,
        clock=time.monotonic,
        serial: bool = False,
    ) -> None:
        self.worker_count = max(1, int(workers))
        self.task_timeout = task_timeout
        self.max_task_failures = max_task_failures
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.seed = seed
        self.telemetry = telemetry
        #: Optional :class:`repro.obs.svc.ServiceObs`; None-default seam.
        self.obs = obs
        self.clock = clock
        self.serial = serial
        self.pending: collections.deque[SupervisedTask] = collections.deque()
        self._delayed: list[tuple[float, int, SupervisedTask]] = []
        self._delay_seq = 0
        self._workers: dict[int, _Worker] = {}
        self._next_worker_id = 0
        self.metrics = {
            "worker_spawns": 0,
            "worker_kills": 0,
            "worker_crashes": 0,
            "task_retries": 0,
            "tasks_done": 0,
            "tasks_failed": 0,
            "tasks_quarantined": 0,
            "serial_fallback": serial,
        }

    # -- events ----------------------------------------------------------

    def _emit(self, kind: str, **data) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(kind, "serve.supervisor", **data)

    # -- submission ------------------------------------------------------

    def submit(self, task: SupervisedTask) -> None:
        task.submitted_at = self.clock()
        self._enqueue(task)

    def _enqueue(self, task: SupervisedTask) -> None:
        """Queue a task for dispatch, opening its ``queue_wait`` span."""
        task.enqueued_at = self.clock()
        if self.obs is not None and task.trace_id is not None:
            task.queue_span = self.obs.tracer.begin(
                "queue_wait", trace_id=task.trace_id, parent=task.span_id,
                track=f"task {task.task_id}", task=task.task_id,
            )
        self.pending.append(task)

    def _close_queue_span(self, task: SupervisedTask) -> None:
        if self.obs is not None and task.queue_span is not None:
            self.obs.tracer.end(task.queue_span)
            task.queue_span = None
            if task.enqueued_at is not None:
                self.obs.metrics.observe(
                    "repro_serve_queue_wait_seconds",
                    max(0.0, self.clock() - task.enqueued_at),
                )

    @property
    def in_flight(self) -> int:
        return sum(1 for worker in self._workers.values() if not worker.idle)

    @property
    def has_work(self) -> bool:
        return bool(self.pending or self._delayed or self.in_flight)

    # -- worker lifecycle ------------------------------------------------

    def _spawn_worker(self) -> _Worker | None:
        ctx = multiprocessing.get_context("fork")
        worker = _Worker(self._next_worker_id, ctx)
        self._next_worker_id += 1
        try:
            worker.process.start()
        except Exception as exc:
            # The pool is unavailable on this host; finish the campaign
            # anyway, in-process.
            worker.close_queues()
            self.serial = True
            self.metrics["serial_fallback"] = True
            self._emit("serial_fallback", error=f"{type(exc).__name__}: {exc}")
            if self.obs is not None:
                self.obs.log("serial_fallback", level="warning",
                             error=f"{type(exc).__name__}: {exc}")
            return None
        self.metrics["worker_spawns"] += 1
        self._workers[worker.worker_id] = worker
        self._emit("worker_spawn", worker=worker.worker_id)
        if self.obs is not None:
            self.obs.log("worker_spawn", worker=worker.worker_id)
        return worker

    def _ensure_workers(self) -> None:
        while not self.serial and len(self._workers) < self.worker_count:
            if self._spawn_worker() is None:
                return

    def _kill_worker(self, worker: _Worker, reason: str) -> None:
        self.metrics["worker_kills"] += 1
        self._emit("worker_kill", worker=worker.worker_id, reason=reason)
        if self.obs is not None:
            self.obs.log("worker_kill", level="warning",
                         worker=worker.worker_id, reason=reason)
        with contextlib.suppress(OSError, ValueError):
            worker.process.kill()
            worker.process.join(timeout=5.0)
        worker.close_queues()
        self._workers.pop(worker.worker_id, None)

    # -- failure handling ------------------------------------------------

    def _record_failure(self, task: SupervisedTask, failure: str,
                        detail: str, worker_id: int | None,
                        report: dict | None = None) -> TaskOutcome | None:
        """Retry (with backoff) or quarantine a crashed/hung task."""
        task.failures.append({
            "attempt": task.attempts,
            "failure": failure,
            "detail": detail,
            "worker": worker_id,
            "report": report,
        })
        if len(task.failures) >= self.max_task_failures:
            self.metrics["tasks_quarantined"] += 1
            forensic = {
                "task_id": task.task_id,
                "kind": task.kind,
                "fingerprint": task.fingerprint,
                "payload": task.payload,
                "attempts": list(task.failures),
                "max_task_failures": self.max_task_failures,
            }
            if self.obs is not None:
                # Mirror PR 3's deadlock forensics: the quarantine report
                # carries the correlation IDs and a metrics snapshot so a
                # poison-task post-mortem is self-contained.
                forensic["trace"] = {
                    "trace_id": task.trace_id,
                    "span_id": task.span_id,
                }
                forensic["supervisor_metrics"] = dict(self.metrics)
                forensic["service_metrics"] = self.obs.metrics.snapshot()
                self.obs.log("task_quarantined", level="error",
                             trace_id=task.trace_id, span_id=task.span_id,
                             task=task.task_id, kind=task.kind,
                             failure=failure, attempts=len(task.failures))
            self._emit("task_quarantined", task=task.task_id,
                       task_kind=task.kind, attempts=len(task.failures))
            return TaskOutcome(
                task, TaskOutcome.QUARANTINED, forensic=forensic,
                error=(failure, detail, "", report),
            )
        self.metrics["task_retries"] += 1
        delay = retry_delay(
            self.backoff_base, len(task.failures), cap=self.backoff_cap,
            token=task.fingerprint, seed=self.seed,
        )
        self._emit("task_retry", task=task.task_id, failure=failure,
                   attempt=len(task.failures), delay=delay)
        if self.obs is not None and task.trace_id is not None:
            now = self.clock()
            self.obs.tracer.record(
                "backoff", now, now + delay, trace_id=task.trace_id,
                parent=task.span_id, track=f"task {task.task_id}",
                failure=failure, attempt=len(task.failures),
            )
            self.obs.log("task_retry", level="warning",
                         trace_id=task.trace_id, span_id=task.span_id,
                         task=task.task_id, failure=failure,
                         attempt=len(task.failures),
                         delay=round(delay, 6))
        heapq.heappush(
            self._delayed, (self.clock() + delay, self._delay_seq, task)
        )
        self._delay_seq += 1
        return None

    # -- the pump --------------------------------------------------------

    def poll(self) -> list[TaskOutcome]:
        """One non-blocking supervision pass; returns finished outcomes."""
        if self.serial:
            return self._poll_serial()
        outcomes: list[TaskOutcome] = []
        now = self.clock()
        self._drain(outcomes)
        self._reap(outcomes, now)
        self._check_deadlines(outcomes, now)
        while self._delayed and self._delayed[0][0] <= now:
            self._enqueue(heapq.heappop(self._delayed)[2])
        self._ensure_workers()
        if self.serial:
            # Spawn failed mid-poll: let the serial path make progress.
            outcomes.extend(self._poll_serial())
            return outcomes
        self._dispatch(now)
        return outcomes

    def _poll_serial(self) -> list[TaskOutcome]:
        """Serial degradation: run one pending task in-process per poll."""
        now = self.clock()
        while self._delayed and self._delayed[0][0] <= now:
            self._enqueue(heapq.heappop(self._delayed)[2])
        if not self.pending:
            return []
        task = self.pending.popleft()
        task.attempts += 1
        self._close_queue_span(task)
        span = None
        traced = False
        if self.obs is not None and task.trace_id is not None:
            span = self.obs.tracer.begin(
                "execute", trace_id=task.trace_id, parent=task.span_id,
                track="worker serial", task=task.task_id,
                kind=task.kind, attempt=task.attempts,
            )
            traced = self.obs.sim_trace
        start = time.perf_counter()
        try:
            sim = None
            if traced:
                result, sim = task_registry.execute_traced(
                    task.kind, task.payload
                )
            else:
                result = task_registry.execute(task.kind, task.payload)
        except Exception as exc:
            if span is not None:
                self.obs.tracer.end(span, ok=False,
                                    error=type(exc).__name__)
            report = getattr(exc, "report", None)
            return [self._task_failed(task, (
                type(exc).__name__, str(exc), traceback.format_exc(),
                report if isinstance(report, dict) else None,
            ), time.perf_counter() - start)]
        if span is not None:
            self.obs.tracer.end(span, ok=True)
            if sim is not None:
                self.obs.add_sim_trace(
                    task.task_id, sim, start=span.start, end=span.end,
                    trace_id=task.trace_id,
                )
        return [self._task_done(task, result, time.perf_counter() - start)]

    def _task_done(self, task: SupervisedTask, result,
                   seconds: float) -> TaskOutcome:
        self.metrics["tasks_done"] += 1
        self._emit("task_done", task=task.task_id, task_kind=task.kind,
                   seconds=seconds, attempts=task.attempts)
        if self.obs is not None:
            self.obs.metrics.observe("repro_serve_task_seconds", seconds,
                                     kind=task.kind)
            self.obs.log("task_done", trace_id=task.trace_id,
                         span_id=task.span_id, task=task.task_id,
                         kind=task.kind, seconds=round(seconds, 6),
                         attempts=task.attempts)
        return TaskOutcome(task, TaskOutcome.DONE, result=result,
                           seconds=seconds)

    def _task_failed(self, task: SupervisedTask, error: tuple,
                     seconds: float) -> TaskOutcome:
        self.metrics["tasks_failed"] += 1
        self._emit("task_failed", task=task.task_id, task_kind=task.kind,
                   error=error[0], attempts=task.attempts)
        if self.obs is not None:
            self.obs.metrics.observe("repro_serve_task_seconds", seconds,
                                     kind=task.kind)
            self.obs.log("task_failed", level="error",
                         trace_id=task.trace_id, span_id=task.span_id,
                         task=task.task_id, kind=task.kind, error=error[0],
                         attempts=task.attempts)
        return TaskOutcome(task, TaskOutcome.FAILED, error=error,
                           seconds=seconds)

    def _drain(self, outcomes: list[TaskOutcome]) -> None:
        """Collect every completed result currently in worker outboxes."""
        for worker in list(self._workers.values()):
            while True:
                try:
                    if worker.outbox.empty():
                        break
                    message = worker.outbox.get()
                except (OSError, EOFError, ValueError):
                    break
                if not (isinstance(message, tuple) and message[0] == _DONE):
                    continue
                if len(message) == 6:
                    __, task_id, ok, payload, seconds, remote = message
                else:
                    __, task_id, ok, payload, seconds = message
                    remote = None
                task = worker.current
                if task is None or task.task_id != task_id:
                    continue   # stale result from a superseded dispatch
                worker.current = None
                worker.deadline = None
                span, worker.span = worker.span, None
                if self.obs is not None and span is not None:
                    self.obs.tracer.end(span, ok=ok)
                    if remote is not None:
                        # The worker's own monotonic window: dispatch
                        # latency is visible as the gap to the span edges.
                        self.obs.tracer.record(
                            "worker_run", remote["start"], remote["end"],
                            trace_id=task.trace_id, parent=span.span_id,
                            track=span.track, task=task.task_id,
                        )
                        if remote.get("sim") is not None:
                            self.obs.add_sim_trace(
                                task.task_id, remote["sim"],
                                start=remote["start"], end=remote["end"],
                                trace_id=task.trace_id,
                            )
                if ok:
                    outcomes.append(self._task_done(task, payload, seconds))
                else:
                    outcomes.append(self._task_failed(task, payload, seconds))

    def _reap(self, outcomes: list[TaskOutcome], now: float) -> None:
        """Respawn-and-retry for workers that died on their own."""
        for worker in list(self._workers.values()):
            if worker.process.is_alive():
                continue
            exitcode = worker.process.exitcode
            self.metrics["worker_crashes"] += 1
            self._emit("worker_crash", worker=worker.worker_id,
                       exitcode=exitcode)
            task = worker.current
            if self.obs is not None:
                self.obs.tracer.end(worker.span, ok=False, error="crashed",
                                    exitcode=exitcode)
                worker.span = None
                self.obs.log(
                    "worker_crash", level="error",
                    trace_id=task.trace_id if task is not None else None,
                    worker=worker.worker_id, exitcode=exitcode,
                )
            worker.close_queues()
            self._workers.pop(worker.worker_id, None)
            if task is not None:
                task.attempts += 1
                outcome = self._record_failure(
                    task, "crashed",
                    f"worker {worker.worker_id} exited with code {exitcode}",
                    worker.worker_id,
                )
                if outcome is not None:
                    outcomes.append(outcome)

    def _check_deadlines(self, outcomes: list[TaskOutcome],
                         now: float) -> None:
        """Kill workers whose in-flight task exceeded the timeout."""
        for worker in list(self._workers.values()):
            if worker.deadline is None or now < worker.deadline:
                continue
            task = worker.current
            if self.obs is not None:
                self.obs.tracer.end(worker.span, ok=False, error="hung")
                worker.span = None
                self.obs.log(
                    "worker_hung_killed", level="error",
                    trace_id=task.trace_id if task is not None else None,
                    worker=worker.worker_id, timeout=self.task_timeout,
                )
            self._kill_worker(worker, reason="task-timeout")
            if task is not None:
                task.attempts += 1
                outcome = self._record_failure(
                    task, "hung",
                    f"no result within {self.task_timeout}s "
                    f"(worker {worker.worker_id} killed)",
                    worker.worker_id,
                )
                if outcome is not None:
                    outcomes.append(outcome)

    def _dispatch(self, now: float) -> None:
        for worker in self._workers.values():
            if not worker.idle or not self.pending:
                continue
            task = self.pending.popleft()
            task.attempts += 1
            worker.current = task
            worker.deadline = (
                None if self.task_timeout is None
                else now + self.task_timeout
            )
            self._emit("task_dispatch", task=task.task_id, task_kind=task.kind,
                       worker=worker.worker_id, attempt=task.attempts)
            if self.obs is not None and task.trace_id is not None:
                self._close_queue_span(task)
                worker.span = self.obs.tracer.begin(
                    "execute", trace_id=task.trace_id, parent=task.span_id,
                    track=f"worker {worker.worker_id}", task=task.task_id,
                    kind=task.kind, attempt=task.attempts,
                )
                message = (task.task_id, task.kind, task.payload, {
                    "trace": task.trace_id,
                    "span": worker.span.span_id,
                    "sim": bool(
                        self.obs.sim_trace
                        and task_registry.get_kind(task.kind).traced
                        is not None
                    ),
                })
            else:
                message = (task.task_id, task.kind, task.payload)
            try:
                worker.inbox.put(message)
            except (OSError, ValueError):
                # Worker died between reap and dispatch; next poll reaps.
                worker.current = None
                worker.deadline = None
                if self.obs is not None:
                    self.obs.tracer.end(worker.span, ok=False,
                                        error="dispatch-failed")
                    worker.span = None
                self.pending.appendleft(task)
                task.attempts -= 1

    # -- shutdown --------------------------------------------------------

    def close(self) -> None:
        """Stop every worker (politely, then by force)."""
        for worker in list(self._workers.values()):
            with contextlib.suppress(OSError, ValueError):
                worker.inbox.put(None)
        for worker in list(self._workers.values()):
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                self._kill_worker(worker, reason="shutdown")
            else:
                worker.close_queues()
                self._workers.pop(worker.worker_id, None)
