"""Admission control and backpressure for the campaign service.

Under heavy traffic the service must shed load instead of growing
memory without bound: a campaign is *admitted* only if the bounded job
queue and task backlog have room and the submitting client is inside
its rate budget.  Rejections are cheap, immediate, and carry a
``retry_after`` hint, which the HTTP layer maps onto 429/503 responses.

Determinism-friendly: the controller takes an injectable ``clock`` so
the rate limiter's token buckets can be tested against a fake clock,
and admitted jobs are dequeued in ``(priority desc, arrival)`` order
with a monotone sequence number as the tiebreak, so a given submission
history always drains identically.
"""

from __future__ import annotations

import heapq
import time
from collections.abc import Callable

from repro.errors import ReproError


class AdmissionError(ReproError):
    """The service refused a job (load shedding, not failure).

    ``reason`` is machine-readable (``queue-full``, ``backlog-full``,
    ``rate-limited``, ``job-too-large``); ``retry_after`` is a hint in
    seconds (``None`` when retrying cannot help, e.g. oversized jobs).
    """

    def __init__(self, message: str, reason: str,
                 retry_after: float | None = None):
        self.reason = reason
        self.retry_after = retry_after
        super().__init__(message)


class TokenBucket:
    """Standard token bucket: ``rate`` tokens/second, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_take(self, tokens: float = 1.0) -> float | None:
        """Take ``tokens`` now; ``None`` on success, else seconds to wait."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return None
        if self.rate <= 0.0:
            return float("inf")
        return (tokens - self._tokens) / self.rate


class AdmissionController:
    """Bounded priority job queue plus per-client rate limiting.

    * ``max_queued_jobs`` bounds jobs admitted but not yet activated;
    * ``max_backlog_tasks`` bounds the total unfinished task count
      across queued *and* active jobs (the real memory bound);
    * ``max_job_tasks`` rejects oversized single jobs outright;
    * ``rate``/``burst`` meter job submissions per client id.
    """

    #: Optional :class:`repro.obs.svc.ServiceObs` seam; the owning
    #: service sets it so rejections carry structured logs and the
    #: ``retry_after`` hints feed a histogram.  Counters come from
    #: :meth:`stats` (no double counting).
    obs = None

    def __init__(
        self,
        max_queued_jobs: int = 64,
        max_backlog_tasks: int = 100_000,
        max_job_tasks: int = 50_000,
        rate: float = 50.0,
        burst: float = 100.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_queued_jobs = max_queued_jobs
        self.max_backlog_tasks = max_backlog_tasks
        self.max_job_tasks = max_job_tasks
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._heap: list[tuple[int, int, object]] = []
        self._seq = 0
        #: Unfinished tasks across queued + active jobs, maintained by
        #: the service via :meth:`task_started_tracking` /
        #: :meth:`task_finished`.
        self.backlog_tasks = 0
        self.admitted_jobs = 0
        self.rejected_jobs = 0
        self.rejections: dict[str, int] = {}

    # -- submission ------------------------------------------------------

    def _reject(self, message: str, reason: str,
                retry_after: float | None) -> AdmissionError:
        self.rejected_jobs += 1
        self.rejections[reason] = self.rejections.get(reason, 0) + 1
        if self.obs is not None:
            if retry_after is not None and retry_after != float("inf"):
                self.obs.metrics.observe(
                    "repro_serve_retry_after_seconds", retry_after
                )
            self.obs.log("admission_reject", level="warning",
                         reason=reason, message=message,
                         retry_after=retry_after)
        return AdmissionError(message, reason=reason, retry_after=retry_after)

    def admit(self, job, *, client: str = "local", priority: int = 0,
              tasks: int = 0) -> None:
        """Admit a job or raise :class:`AdmissionError` (load shedding)."""
        if tasks > self.max_job_tasks:
            raise self._reject(
                f"job of {tasks} tasks exceeds the per-job limit "
                f"({self.max_job_tasks})",
                reason="job-too-large", retry_after=None,
            )
        if len(self._heap) >= self.max_queued_jobs:
            raise self._reject(
                f"job queue full ({self.max_queued_jobs} jobs waiting)",
                reason="queue-full", retry_after=1.0,
            )
        if self.backlog_tasks + tasks > self.max_backlog_tasks:
            raise self._reject(
                f"task backlog full ({self.backlog_tasks} unfinished + "
                f"{tasks} requested > {self.max_backlog_tasks})",
                reason="backlog-full", retry_after=1.0,
            )
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, clock=self._clock
            )
        wait = bucket.try_take()
        if wait is not None:
            raise self._reject(
                f"client {client!r} over its submission rate "
                f"({self.rate}/s, burst {self.burst})",
                reason="rate-limited", retry_after=wait,
            )
        self.admitted_jobs += 1
        self.backlog_tasks += tasks
        heapq.heappush(self._heap, (-priority, self._seq, job))
        self._seq += 1

    # -- draining --------------------------------------------------------

    def next_job(self):
        """Highest-priority admitted job, or ``None`` when idle."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def task_finished(self, count: int = 1) -> None:
        self.backlog_tasks = max(0, self.backlog_tasks - count)

    @property
    def queued_jobs(self) -> int:
        return len(self._heap)

    def stats(self) -> dict:
        return {
            "queued_jobs": self.queued_jobs,
            "backlog_tasks": self.backlog_tasks,
            "admitted_jobs": self.admitted_jobs,
            "rejected_jobs": self.rejected_jobs,
            "rejections": dict(sorted(self.rejections.items())),
            "limits": {
                "max_queued_jobs": self.max_queued_jobs,
                "max_backlog_tasks": self.max_backlog_tasks,
                "max_job_tasks": self.max_job_tasks,
                "rate": self.rate,
                "burst": self.burst,
            },
        }
