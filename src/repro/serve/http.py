"""Local HTTP/JSON frontend for the campaign service (stdlib only).

A deliberately small HTTP/1.1 server on ``asyncio`` streams — no
framework dependency, close-delimited responses, JSON bodies:

=======  ======================  ==========================================
POST     ``/jobs``               submit ``{kind, payloads, priority,
                                 client}``; 202 + ``{job_id}`` on
                                 admission, 429/503 + ``{reason,
                                 retry_after}`` when load is shed
GET      ``/jobs/<id>``          job status (state, progress, profile)
GET      ``/jobs/<id>/results``  ordered results once finished (409 while
                                 running, 500 with the failure otherwise)
GET      ``/jobs/<id>/events``   Server-Sent-Events live progress: a
                                 ``snapshot`` frame, then lifecycle
                                 frames (``active``/``progress``), then
                                 a terminal ``done``/``failed`` frame
                                 and the stream closes
GET      ``/metrics``            Prometheus text exposition (works with
                                 or without an attached ServiceObs)
GET      ``/stats``              service-wide stats (admission, pool,
                                 store, jobs)
GET      ``/healthz``            liveness probe
=======  ======================  ==========================================

Backpressure extends into the transport: admission rejections map onto
429 (rate limiting) and 503 (queue/backlog full) with a
``retry_after`` hint, so a well-behaved client backs off instead of
retry-hammering a saturated service — and a slow SSE consumer loses
oldest frames from its bounded buffer rather than stalling the pump.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

from repro.errors import CampaignError, ReproError
from repro.serve.admission import AdmissionError
from repro.serve.service import CampaignService

_MAX_BODY = 64 << 20
_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(status: int, body) -> bytes:
    if isinstance(body, str):
        # Plain-text bodies (the /metrics exposition).
        payload = body.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        payload = json.dumps(body).encode("utf-8")
        content_type = "application/json"
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + payload


class _SseStream:
    """Sentinel routing result: stream ``job``'s events instead of one
    JSON response."""

    __slots__ = ("job",)

    def __init__(self, job) -> None:
        self.job = job


def _sse_frame(event: dict) -> bytes:
    name = event.get("event", "message")
    return (f"event: {name}\ndata: {json.dumps(event)}\n\n").encode("utf-8")


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request: (method, path, body-bytes) or None on EOF."""
    request_line = await reader.readline()
    if not request_line:
        return None
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) < 2:
        return None
    method, path = parts[0].upper(), parts[1]
    content_length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("ascii", "replace").partition(":")
        if name.strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                content_length = 0
    if content_length > _MAX_BODY:
        return method, path, None   # signal an oversized body
    body = await reader.readexactly(content_length) if content_length else b""
    return method, path, body


class HttpFrontend:
    """Routes HTTP requests onto one :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    # -- routing ---------------------------------------------------------

    def handle(self, method: str, path: str, body: bytes | None):
        if body is None:
            return 413, {"error": "request body too large"}
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "serial": self.service.supervisor.serial}
        if path == "/stats" and method == "GET":
            return 200, self.service.stats()
        if path == "/metrics" and method == "GET":
            return 200, self.service.metrics_text()
        if path == "/jobs" and method == "POST":
            return self._submit(body)
        if path.startswith("/jobs/"):
            tail = path[len("/jobs/"):]
            if tail.endswith("/results"):
                return self._results(method, tail[: -len("/results")])
            if tail.endswith("/events"):
                return self._events(method, tail[: -len("/events")])
            return self._status(method, tail)
        return 404, {"error": f"no route for {method} {path}"}

    def _submit(self, body: bytes):
        try:
            request = json.loads(body or b"{}")
            kind = request["kind"]
            payloads = request["payloads"]
        except (ValueError, KeyError, TypeError) as exc:
            return 400, {"error": f"malformed job request: {exc}"}
        try:
            job = self.service.submit(
                kind, payloads,
                client=str(request.get("client", "http")),
                priority=int(request.get("priority", 0)),
            )
        except AdmissionError as exc:
            status = 429 if exc.reason == "rate-limited" else 503
            if exc.reason == "job-too-large":
                status = 413
            return status, {
                "error": str(exc),
                "reason": exc.reason,
                "retry_after": exc.retry_after,
            }
        except ReproError as exc:
            # e.g. ConfigError for an unknown task kind: a client bug.
            return 400, {"error": str(exc)}
        return 202, {"job_id": job.job_id, "tasks": job.total}

    def _status(self, method: str, job_id: str):
        if method != "GET":
            return 405, {"error": "job status is GET-only"}
        if job_id not in self.service.jobs:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, self.service.job_status(job_id)

    def _results(self, method: str, job_id: str):
        if method != "GET":
            return 405, {"error": "job results are GET-only"}
        job = self.service.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if not job.finished:
            return 409, {
                "error": f"job {job_id} still running",
                "state": job.state,
                "resolved": job.resolved,
                "total": job.total,
            }
        try:
            # Raw (JSON) results over the wire; the client re-applies the
            # kind's decode adapter locally.
            self.service.results(job)
        except CampaignError as exc:
            return 500, {"error": str(exc), "state": job.state}
        return 200, {"kind": job.kind, "results": list(job.results)}

    def _events(self, method: str, job_id: str):
        if method != "GET":
            return 405, {"error": "job events are GET-only"}
        job = self.service.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return _SseStream(job)

    # -- connection handler ----------------------------------------------

    async def serve_connection(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        try:
            request = await _read_request(reader)
            if request is not None:
                try:
                    result = self.handle(*request)
                except Exception as exc:   # never kill the server loop
                    result = 500, {"error": f"{type(exc).__name__}: {exc}"}
                if isinstance(result, _SseStream):
                    await self._stream_events(writer, result.job)
                else:
                    writer.write(_response(*result))
                    await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _stream_events(self, writer: asyncio.StreamWriter,
                             job) -> None:
        """SSE: a snapshot frame, live frames as the pump publishes them,
        a terminal frame named after the final state, then close.

        Close-delimited like every other response; the subscriber's
        bounded buffer (drop-oldest) keeps a slow consumer from growing
        service memory, and any drops are surfaced as an SSE comment.
        """
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        stream = job.subscribe()
        reported_drops = 0
        try:
            writer.write(_sse_frame({"event": "snapshot", **job.status()}))
            await writer.drain()
            if job.finished:
                writer.write(_sse_frame({
                    "event": job.state, "job_id": job.job_id,
                    "state": job.state, "resolved": job.resolved,
                    "total": job.total,
                }))
                await writer.drain()
                return
            while True:
                events = stream.pop_all()
                terminal = False
                wrote = bool(events)
                for event in events:
                    writer.write(_sse_frame(event))
                    terminal = terminal or event.get("event") in (
                        "done", "failed"
                    )
                if stream.dropped > reported_drops:
                    writer.write(
                        f": dropped {stream.dropped - reported_drops} "
                        f"frames (slow consumer)\n\n".encode("ascii")
                    )
                    reported_drops = stream.dropped
                    wrote = True
                if wrote:
                    await writer.drain()
                if terminal:
                    return
                await asyncio.sleep(self.service.poll_interval)
        finally:
            job.unsubscribe(stream)


async def start_http_server(service: CampaignService, host: str = "127.0.0.1",
                            port: int = 0) -> asyncio.AbstractServer:
    """Bind the frontend; ``port=0`` picks a free port (see
    ``server.sockets[0].getsockname()``)."""
    frontend = HttpFrontend(service)
    return await asyncio.start_server(
        frontend.serve_connection, host=host, port=port
    )


async def serve_forever(service: CampaignService, host: str = "127.0.0.1",
                        port: int = 8734, ready=None) -> None:
    """Run the HTTP frontend and the service pump until cancelled."""
    server = await start_http_server(service, host=host, port=port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound)
    pump = asyncio.ensure_future(service.drive())
    try:
        async with server:
            await server.serve_forever()
    finally:
        pump.cancel()
