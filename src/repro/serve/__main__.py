"""CLI: campaign-service smoke gate, kill -9 chaos run, HTTP server.

``python -m repro.serve --smoke`` is the CI gate: an in-process client
runs a tiny simulation campaign with forced worker crashes and hangs,
and the gate asserts (1) results are byte-identical to serial
in-process execution, (2) a second service over the same store resumes
entirely from durable results (zero re-executions), (3) the store
records exactly one execution per task, and (4) admission control sheds
load when saturated.

``python -m repro.serve --chaos`` is the EXPERIMENTS.md kill -9 run: a
48-config campaign executes in a child service process (its own process
group) that is SIGKILLed — process tree and all — mid-campaign,
restarted, killed again, and finally allowed to finish; the gate then
proves the store-assembled results are byte-identical to an
uninterrupted serial run with zero duplicated executions recorded.

``python -m repro.serve --serve [--port P] [--store PATH]`` runs the
local HTTP/JSON frontend; add ``--obs`` for spans + /metrics histograms
+ JSON logs, ``--sim-trace`` to also ship simulator stage tracks back
from workers, and ``--trace-out PATH`` to write the unified campaign
Perfetto timeline on shutdown.  ``--run-child SPEC.json`` is the chaos
run's child entry point (not for interactive use).
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import hashlib
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.client import InProcessClient
from repro.serve.service import CampaignService
from repro.serve.store import ResultStore, canonical_json
from repro.serve.tasks import execute


def _digest(results: list) -> str:
    """Byte-identity digest over a campaign's ordered results."""
    return hashlib.sha256(
        canonical_json(results).encode("utf-8")
    ).hexdigest()[:16]


def _workload_payloads(configs: list[str], workloads: list[str],
                       scale: int, seed: int) -> list[dict]:
    return [
        {"workload": workload, "config": config, "scale": scale, "seed": seed}
        for config in configs
        for workload in workloads
    ]


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


# ----------------------------------------------------------------------
# --smoke
# ----------------------------------------------------------------------

def run_smoke(scale: int, seed: int, workdir: str) -> int:
    from repro.obs.events import Telemetry
    from repro.pipeline.config import config_by_name  # noqa: F401 (validates)

    configs = ["TDX", "T|DX +P", "TD|X +Q", "T|D|X1|X2 +P+Q"]
    workloads = ["gcd", "stream"]
    payloads = _workload_payloads(configs, workloads, scale, seed)
    print(f"serve smoke: {len(payloads)} workload-run tasks "
          f"({len(configs)} configs x {len(workloads)} workloads, "
          f"scale={scale} seed={seed})")

    print("\n[1/5] serial in-process reference...")
    reference = [execute("workload-run", payload) for payload in payloads]
    reference = json.loads(canonical_json(reference))
    print(f"reference digest {_digest(reference)}")

    print("\n[2/5] supervised campaign with forced worker crash + hang...")
    store_path = os.path.join(workdir, "serve-smoke.sqlite")
    telemetry = Telemetry()
    with CampaignService(
        store_path, workers=2, telemetry=telemetry,
        task_timeout=5.0, backoff_base=0.01, backoff_cap=0.1,
    ) as service:
        client = InProcessClient(service)
        chaos_payloads = [
            {"marker": os.path.join(workdir, "crash.marker"), "token": "c"},
        ]
        hang_payloads = [
            {"marker": os.path.join(workdir, "hang.marker"), "token": "h",
             "hang_seconds": 60.0},
        ]
        chaos_job = service.submit("chaos-crash-once", chaos_payloads)
        hang_job = service.submit("chaos-hang-once", hang_payloads)
        results = client.map("workload-run", payloads, timeout=600.0)
        asyncio.run(service.wait(chaos_job, timeout=120.0))
        asyncio.run(service.wait(hang_job, timeout=120.0))
        stats = service.stats()
    if results != reference:
        return _fail("supervised results differ from serial reference")
    print(f"campaign digest {_digest(results)} == reference; "
          f"kills={stats['supervisor']['worker_kills']} "
          f"crashes={stats['supervisor']['worker_crashes']} "
          f"retries={stats['supervisor']['task_retries']} "
          f"spawns={stats['supervisor']['worker_spawns']}")
    if stats["supervisor"]["worker_crashes"] < 1:
        return _fail("forced worker crash did not register")
    if stats["supervisor"]["worker_kills"] < 1:
        return _fail("hung worker was never killed")
    if stats["supervisor"]["task_retries"] < 2:
        return _fail("crash/hang retries did not happen")
    if not telemetry.events_of("worker_spawn"):
        return _fail("no telemetry streamed to the obs event bus")

    print("\n[3/5] resume: fresh service over the same store...")
    with CampaignService(store_path, workers=2) as resumed_service:
        job = resumed_service.submit("workload-run", payloads)
        resumed = asyncio.run(resumed_service.wait(job, timeout=600.0))
        status = job.status()
    if resumed != reference:
        return _fail("resumed results differ from serial reference")
    if status["executed"] != 0 or status["from_store"] != len(payloads):
        return _fail(
            f"resume re-executed work: executed={status['executed']} "
            f"from_store={status['from_store']} (want 0/{len(payloads)})"
        )
    print(f"resume replayed {status['from_store']}/{len(payloads)} results "
          f"from the store, executed 0")

    print("\n[4/5] dedup audit over the durable store...")
    with ResultStore(store_path) as store:
        max_exec = store.max_executions()
        rows = len(store)
    if max_exec != 1:
        return _fail(f"duplicated executions recorded (max={max_exec})")
    print(f"{rows} stored results, max executions per fingerprint = 1")

    print("\n[5/5] admission control sheds load when saturated...")
    tiny = AdmissionController(max_queued_jobs=1, max_backlog_tasks=4,
                               rate=1000.0, burst=1000.0)
    with CampaignService(None, workers=1, admission=tiny) as shed_service:
        shed_service.submit("chaos-echo", [{"value": 1}] * 2)
        try:
            shed_service.submit("chaos-echo", [{"value": 2}] * 100)
        except AdmissionError as exc:
            print(f"shed as expected: {exc.reason} (retry_after="
                  f"{exc.retry_after})")
        else:
            return _fail("oversized backlog was admitted")

    print("\nserve smoke gate OK")
    return 0


# ----------------------------------------------------------------------
# --chaos (parent orchestrator) and --run-child (the victim)
# ----------------------------------------------------------------------

def run_child(spec_path: str) -> int:
    """Chaos child: run the spec's jobs to completion, print a digest."""
    with open(spec_path, encoding="utf-8") as handle:
        spec = json.load(handle)
    with CampaignService(
        spec["store"], workers=spec.get("workers", 2),
        task_timeout=spec.get("task_timeout", 30.0),
        backoff_base=0.01, backoff_cap=0.1,
    ) as service:
        jobs = [
            service.submit(entry["kind"], entry["payloads"])
            for entry in spec["jobs"]
        ]
        all_results = [
            asyncio.run(service.wait(job, timeout=3600.0)) for job in jobs
        ]
    print(json.dumps({
        "digests": [_digest(results) for results in all_results],
        "stats": {
            "executed": sum(job.executed for job in jobs),
            "from_store": sum(job.from_store for job in jobs),
        },
    }))
    return 0


def _store_rows(path: str) -> int:
    import sqlite3

    if not os.path.exists(path):
        return 0
    try:
        conn = sqlite3.connect(path, timeout=1.0)
        try:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        finally:
            conn.close()
    except sqlite3.Error:
        return 0


def _spawn_child(spec_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in [src_root, env.get("PYTHONPATH", "")] if p]
    )
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--run-child", spec_path],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        start_new_session=True,   # own process group: SIGKILL takes workers too
        env=env,
    )


def _kill_tree(child: subprocess.Popen) -> None:
    with contextlib.suppress(ProcessLookupError):
        os.killpg(child.pid, signal.SIGKILL)
    child.wait()


def run_chaos(scale: int, seed: int, workdir: str,
              kill_points: tuple[int, ...] = (6, 20),
              workload: str = "string_search") -> int:
    from repro.pipeline.config import all_configs

    configs = [config.name for config in all_configs(include_padded=True)]
    payloads = _workload_payloads(configs, [workload], scale, seed)
    print(f"chaos run: {len(payloads)}-config campaign "
          f"(workload={workload} scale={scale} seed={seed}); "
          f"SIGKILL at {list(kill_points)} stored results")

    print("\n[1/3] uninterrupted serial reference...")
    reference = json.loads(canonical_json(
        [execute("workload-run", payload) for payload in payloads]
    ))
    expected = _digest(reference)
    print(f"reference digest {expected}")

    store_path = os.path.join(workdir, "serve-chaos.sqlite")
    spec_path = os.path.join(workdir, "chaos-spec.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump({
            "store": store_path,
            "workers": 2,
            "jobs": [
                {"kind": "workload-run", "payloads": payloads},
                {"kind": "chaos-crash-once", "payloads": [{
                    "marker": os.path.join(workdir, "chaos-crash.marker"),
                    "token": "worker-kill",
                }]},
            ],
        }, handle)

    print("\n[2/3] supervised campaign under SIGKILL...")
    interruptions = 0
    final_output = ""
    for attempt, kill_at in enumerate([*kill_points, None]):
        child = _spawn_child(spec_path)
        if kill_at is None:
            final_output = child.communicate()[0]
            if child.returncode != 0:
                print(final_output, file=sys.stderr)
                return _fail(f"final run exited {child.returncode}")
            break
        deadline = time.monotonic() + 600.0
        killed = False
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break   # finished before we could interrupt it
            if _store_rows(store_path) >= kill_at:
                _kill_tree(child)
                killed = True
                interruptions += 1
                print(f"  SIGKILLed service process group at "
                      f">={kill_at} stored results (attempt {attempt + 1})")
                break
            time.sleep(0.005)
        if not killed and child.poll() is None:
            _kill_tree(child)
            return _fail("chaos child never reached the kill point")
        if not killed:
            print(f"  run {attempt + 1} finished before reaching "
                  f"{kill_at} results (campaign too fast); continuing")

    print("\n[3/3] verifying resume, byte-identity, and dedup...")
    with CampaignService(store_path, workers=1) as service:
        job = service.submit("workload-run", payloads)
        results = asyncio.run(service.wait(job, timeout=600.0))
        status = job.status()
    if status["executed"] != 0:
        return _fail(f"resume executed {status['executed']} tasks "
                     f"(want 0: every result must come from the store)")
    if results != reference:
        return _fail("chaos-run results differ from uninterrupted serial run")
    with ResultStore(store_path) as store:
        max_exec = store.max_executions()
    if max_exec != 1:
        return _fail(f"store recorded duplicated executions (max={max_exec})")
    print(f"digest {_digest(results)} == serial reference {expected}; "
          f"{interruptions} SIGKILL interruption(s); "
          f"max executions per fingerprint = 1")
    print("\nchaos gate OK")
    return 0


# ----------------------------------------------------------------------
# --serve
# ----------------------------------------------------------------------

def run_server(host: str, port: int, store: str | None, workers: int,
               obs: bool = False, sim_trace: bool = False,
               trace_out: str | None = None) -> int:
    from repro.serve.http import serve_forever

    service_obs = None
    if obs or sim_trace or trace_out:
        from repro.obs import JsonLogger, ServiceObs

        service_obs = ServiceObs(sim_trace=sim_trace, logger=JsonLogger())
    service = CampaignService(store, workers=workers, obs=service_obs)

    def announce(bound) -> None:
        print(f"repro.serve listening on http://{bound[0]}:{bound[1]} "
              f"(store={store or ':memory:'}, workers={workers}, "
              f"obs={'on' if service_obs else 'off'})",
              flush=True)

    try:
        asyncio.run(serve_forever(service, host=host, port=port,
                                  ready=announce))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
        if service_obs is not None and trace_out:
            from repro.obs import export_campaign_trace

            trace = export_campaign_trace(service_obs, trace_out)
            print(f"wrote {len(trace['traceEvents'])} campaign trace "
                  f"events to {trace_out} (open in Perfetto)", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="supervised campaign service: smoke gate, chaos run, "
                    "HTTP server",
    )
    parser.add_argument("--smoke", action="store_true",
                        help="run the CI smoke gate")
    parser.add_argument("--chaos", action="store_true",
                        help="run the kill -9 chaos gate")
    parser.add_argument("--serve", action="store_true",
                        help="run the HTTP/JSON frontend")
    parser.add_argument("--run-child", metavar="SPEC",
                        help=argparse.SUPPRESS)
    parser.add_argument("--scale", type=int, default=None,
                        help="workload scale (default: REPRO_BENCH_SCALE or "
                             "8 for --smoke; 64 for --chaos, so tasks are "
                             "slow enough to interrupt mid-flight)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8734)
    parser.add_argument("--store", default=None,
                        help="durable result store path (sqlite)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--obs", action="store_true",
                        help="--serve: attach service observability "
                             "(spans, /metrics histograms, JSON logs on "
                             "stderr)")
    parser.add_argument("--sim-trace", action="store_true",
                        help="--serve: also ship simulator stage tracks "
                             "back from traced task kinds (implies --obs)")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="--serve: write the unified campaign Perfetto "
                             "timeline to PATH on shutdown (implies --obs)")
    args = parser.parse_args(argv)

    if args.run_child:
        return run_child(args.run_child)
    if args.smoke:
        scale = args.scale or int(os.environ.get("REPRO_BENCH_SCALE", "8"))
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as workdir:
            return run_smoke(scale, args.seed, workdir)
    if args.chaos:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
            return run_chaos(args.scale or 64, args.seed, workdir)
    if args.serve:
        return run_server(args.host, args.port, args.store, args.workers,
                          obs=args.obs, sim_trace=args.sim_trace,
                          trace_out=args.trace_out)
    parser.print_help()
    return 2


if __name__ == "__main__":
    sys.exit(main())
