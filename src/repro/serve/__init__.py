"""``repro.serve`` — the supervised simulation-as-a-service tier.

One hardened execution tier for every campaign in the tree (CPI tables,
DSE sweeps, fault campaigns, fuzz runs):

* :mod:`~repro.serve.service` — the asyncio campaign service;
* :mod:`~repro.serve.supervisor` — health-checked worker pool with
  kill/respawn, deterministic backoff retries, poison-task quarantine,
  and serial degradation;
* :mod:`~repro.serve.admission` — bounded priority job queue, per-client
  rate limiting, load shedding;
* :mod:`~repro.serve.store` — durable content-fingerprint-keyed result
  store (sqlite) providing dedup and crash-safe checkpointed resume;
* :mod:`~repro.serve.tasks` — the JSON-pure task-kind registry;
* :mod:`~repro.serve.http` / :mod:`~repro.serve.client` — local
  HTTP/JSON API and the in-process/HTTP clients;
* :mod:`~repro.serve.chaos` — misbehaving task kinds for supervisor
  tests and the kill -9 chaos gate.

``python -m repro.serve --smoke`` is the CI gate; ``--chaos`` is the
kill -9 resume demonstration; ``--serve`` runs the HTTP frontend.
"""

from repro.serve import chaos as _chaos   # register chaos task kinds
from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.client import HttpClient, InProcessClient
from repro.serve.service import CampaignService, Job
from repro.serve.store import ResultStore, canonical_json, task_fingerprint
from repro.serve.supervisor import SupervisedTask, Supervisor, TaskOutcome
from repro.serve.tasks import (
    execute,
    execute_traced,
    register,
    registered_kinds,
)

del _chaos

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "CampaignService",
    "HttpClient",
    "InProcessClient",
    "Job",
    "ResultStore",
    "SupervisedTask",
    "Supervisor",
    "TaskOutcome",
    "canonical_json",
    "execute",
    "execute_traced",
    "register",
    "registered_kinds",
    "task_fingerprint",
]
