"""Chaos task kinds: misbehaving work units for exercising the supervisor.

The resilience layer injects faults into the *simulated machine*
(:mod:`repro.resilience.faults`); this module injects faults into the
*execution tier itself* — workers that die, hang, or always fail — so
the supervisor's kill/respawn/retry/quarantine paths are tested against
real processes, not mocks.

The once-kinds coordinate across attempts through a marker file named
in the payload: the first execution drops the marker (fsync'd, so a
SIGKILL a microsecond later still finds it) and then misbehaves; the
retry sees the marker and succeeds.  That makes each chaos task a
deterministic function of its payload *plus on-disk attempt history*,
which is exactly the shape of a real transient fault.
"""

from __future__ import annotations

import os
import time

from repro.serve.tasks import register


def _drop_marker(path: str) -> bool:
    """Atomically create the marker; True when this call created it."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    return True


def crash_once(payload: dict):
    """Die (hard, ``os._exit``) on the first execution; succeed after."""
    if _drop_marker(payload["marker"]):
        os._exit(payload.get("exit_code", 23))
    return {"survived": True, "token": payload.get("token")}


def hang_once(payload: dict):
    """Hang far past any task timeout on the first execution."""
    if _drop_marker(payload["marker"]):
        time.sleep(payload.get("hang_seconds", 3600.0))
    return {"survived": True, "token": payload.get("token")}


def always_crash(payload: dict):
    """Poison task: kills its worker on every attempt (quarantine bait)."""
    os._exit(payload.get("exit_code", 29))


def fail(payload: dict):
    """Deterministic task exception (never retried, never quarantined)."""
    raise ValueError(payload.get("message", "chaos task failure"))


def echo(payload: dict):
    """Trivially succeed; the cheap unit for queueing/dedup tests."""
    return {"echo": payload.get("value")}


def sleep(payload: dict):
    """Sleep ``seconds`` then echo — an honest long-running task."""
    time.sleep(payload.get("seconds", 0.1))
    return {"slept": payload.get("seconds", 0.1), "token": payload.get("token")}


register("chaos-crash-once", crash_once)
register("chaos-hang-once", hang_once)
register("chaos-always-crash", always_crash)
register("chaos-fail", fail)
register("chaos-echo", echo)
register("chaos-sleep", sleep)
