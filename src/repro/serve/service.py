"""The campaign service: jobs in, durable deduped results out.

:class:`CampaignService` ties the tier together: admission control
(:mod:`repro.serve.admission`) decides whether a campaign gets in, the
durable store (:mod:`repro.serve.store`) decides how little of it needs
to run, and the supervised pool (:mod:`repro.serve.supervisor`) runs
the remainder and survives the workers.  The service itself is a plain
synchronous state machine pumped by :meth:`CampaignService.pump`; the
``async`` surface (:meth:`wait`, :meth:`drive`) is a thin timing
wrapper, so the same service instance backs the in-process client, the
HTTP frontend, and the tests' hand-cranked pumps.

Execution sharing: every task is keyed by its content fingerprint.  A
fingerprint already in the store resolves instantly; one already in
flight attaches the new (job, slot) as a waiter on the single
execution; only genuinely new work reaches the pool.  Fresh results are
committed to the store *before* any job observes them, and jobs consume
the canonical (JSON round-tripped) form — so a result is bit-identical
whether it was computed by this process, a previous (killed) service
run, or another job's identical task.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time

from repro.errors import CampaignError
from repro.obs.campaign import CampaignProfile
from repro.obs.svc import JobEventStream, stats_metrics
from repro.parallel import WorkerTraceback
from repro.serve import tasks as task_registry
from repro.serve.admission import AdmissionController
from repro.serve.store import ResultStore, canonical_json, task_fingerprint
from repro.serve.supervisor import SupervisedTask, Supervisor, TaskOutcome

_PENDING = object()


class Job:
    """One admitted campaign: an ordered list of same-kind tasks."""

    QUEUED = "queued"
    ACTIVE = "active"
    DONE = "done"
    FAILED = "failed"

    def __init__(self, job_id: str, kind: str, payloads: list,
                 client: str, priority: int) -> None:
        self.job_id = job_id
        self.kind = kind
        self.payloads = payloads
        self.client = client
        self.priority = priority
        self.fingerprints = [
            task_fingerprint(kind, payload) for payload in payloads
        ]
        self.state = Job.QUEUED
        self.results: list = [_PENDING] * len(payloads)
        #: Slot -> (name, message, traceback, report) for failed tasks.
        self.errors: dict[int, tuple] = {}
        #: Forensic reports for quarantined slots.
        self.quarantined: dict[int, dict] = {}
        self.from_store = 0
        self.executed = 0
        self.shared = 0       # slots resolved by another task's execution
        self.submitted = time.time()
        self.profile = CampaignProfile(label=job_id)
        #: Trace correlation (obs-attached services; ``trace_id == job_id``).
        self.trace_id: str | None = None
        self.span = None              # the job's root span
        self.task_spans: dict = {}    # slot -> open task span
        self._subscribers: list[JobEventStream] = []

    # -- SSE event fan-out ------------------------------------------------

    def subscribe(self, max_buffer: int = 256) -> JobEventStream:
        """Attach one SSE subscriber; always unsubscribe it."""
        stream = JobEventStream(max_buffer=max_buffer)
        self._subscribers.append(stream)
        return stream

    def unsubscribe(self, stream: JobEventStream) -> None:
        with contextlib.suppress(ValueError):
            self._subscribers.remove(stream)

    def publish(self, event: str, **data) -> None:
        """Push one lifecycle event to every subscriber (no-op without
        any — jobs pay nothing for the SSE surface until someone
        listens)."""
        if not self._subscribers:
            return
        frame = {
            "event": event,
            "job_id": self.job_id,
            "state": self.state,
            "resolved": self.resolved,
            "total": self.total,
            **data,
        }
        for stream in self._subscribers:
            stream.push(frame)

    @property
    def total(self) -> int:
        return len(self.payloads)

    @property
    def resolved(self) -> int:
        return sum(1 for value in self.results if value is not _PENDING)

    @property
    def finished(self) -> bool:
        return self.state in (Job.DONE, Job.FAILED)

    def status(self) -> dict:
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "total": self.total,
            "resolved": self.resolved,
            "from_store": self.from_store,
            "executed": self.executed,
            "shared": self.shared,
            "failed": len(self.errors) - len(self.quarantined),
            "quarantined": len(self.quarantined),
            "profile": self.profile.report(),
        }


class CampaignService:
    """Supervised, admission-controlled, durable campaign execution."""

    def __init__(
        self,
        store: ResultStore | str | None = None,
        workers: int = 2,
        *,
        admission: AdmissionController | None = None,
        telemetry=None,
        obs=None,
        poll_interval: float = 0.005,
        **supervisor_kwargs,
    ) -> None:
        self.store = (
            store if isinstance(store, ResultStore) else ResultStore(store)
        )
        self.telemetry = telemetry
        #: Optional :class:`repro.obs.svc.ServiceObs`, threaded through
        #: admission and the supervised pool (None-default seam).
        self.obs = obs
        self.admission = admission or AdmissionController()
        if obs is not None and self.admission.obs is None:
            self.admission.obs = obs
        self.supervisor = Supervisor(
            workers=workers, telemetry=telemetry, obs=obs,
            **supervisor_kwargs
        )
        self.poll_interval = poll_interval
        self.jobs: dict[str, Job] = {}
        self._job_seq = 0
        #: fingerprint -> waiters [(job, slot), ...] for in-flight tasks.
        self._inflight: dict[str, list[tuple[Job, int]]] = {}
        self._closed = False

    # -- events ----------------------------------------------------------

    def _emit(self, kind: str, **data) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(kind, "serve.service", **data)

    # -- submission ------------------------------------------------------

    def submit(self, kind: str, payloads: list, *, client: str = "local",
               priority: int = 0) -> Job:
        """Admit one campaign or raise
        :class:`~repro.serve.admission.AdmissionError`."""
        task_registry.get_kind(kind)   # fail fast on unknown kinds
        self._job_seq += 1
        job = Job(
            f"job-{self._job_seq:04d}", kind, list(payloads),
            client=client, priority=priority,
        )
        admission_span = None
        if self.obs is not None:
            job.trace_id = job.job_id
            job.span = self.obs.tracer.begin(
                "job", trace_id=job.trace_id, track="jobs",
                job=job.job_id, kind=kind, tasks=job.total, client=client,
            )
            admission_span = self.obs.tracer.begin(
                "admission", trace_id=job.trace_id,
                parent=job.span.span_id, track="jobs", job=job.job_id,
            )
        try:
            self.admission.admit(
                job, client=client, priority=priority, tasks=job.total
            )
        except Exception as exc:
            if self.obs is not None:
                self.obs.tracer.end(admission_span, rejected=True)
                self.obs.tracer.end(job.span, state="rejected",
                                    error=type(exc).__name__)
            raise
        if self.obs is not None:
            self.obs.tracer.end(admission_span)
            self.obs.log("job_admitted", trace_id=job.trace_id,
                         span_id=job.span.span_id, job=job.job_id,
                         kind=kind, tasks=job.total, client=client,
                         priority=priority)
        self.jobs[job.job_id] = job
        self._emit("job_admitted", job=job.job_id, task_kind=kind,
                   tasks=job.total, client=client, priority=priority)
        return job

    # -- the pump --------------------------------------------------------

    def pump(self) -> None:
        """One scheduling pass: activate, poll the pool, land results."""
        while True:
            job = self.admission.next_job()
            if job is None:
                break
            self._activate(job)
        for outcome in self.supervisor.poll():
            self._land(outcome)

    def _activate(self, job: Job) -> None:
        job.state = Job.ACTIVE
        job.profile.begin(
            total=job.total, workers=self.supervisor.worker_count
        )
        for slot, fingerprint in enumerate(job.fingerprints):
            stored = self.store.get(fingerprint, default=_PENDING)
            if stored is not _PENDING:
                job.from_store += 1
                job.profile.checkpoint_hit()
                if self.obs is not None and job.trace_id is not None:
                    now = self.obs.tracer.clock()
                    self.obs.tracer.record(
                        "store_hit", now, now, trace_id=job.trace_id,
                        parent=job.span.span_id, track="jobs",
                        category="store", slot=slot,
                    )
                self._resolve(job, slot, stored)
                continue
            waiters = self._inflight.get(fingerprint)
            if waiters is not None:
                waiters.append((job, slot))
                continue
            self._inflight[fingerprint] = [(job, slot)]
            task = SupervisedTask(
                task_id=f"{job.job_id}/{slot}",
                kind=job.kind,
                payload=job.payloads[slot],
                fingerprint=fingerprint,
            )
            if self.obs is not None and job.trace_id is not None:
                span = self.obs.tracer.begin(
                    "task", trace_id=job.trace_id,
                    parent=job.span.span_id, track=f"task {task.task_id}",
                    slot=slot, kind=job.kind,
                )
                job.task_spans[slot] = span
                task.trace_id = job.trace_id
                task.span_id = span.span_id
            self.supervisor.submit(task)
        job.publish("active", from_store=job.from_store)
        self._finish_if_done(job)

    def _land(self, outcome: TaskOutcome) -> None:
        task = outcome.task
        waiters = self._inflight.pop(task.fingerprint, [])
        if outcome.status == TaskOutcome.DONE:
            commit_span = None
            if self.obs is not None and task.trace_id is not None:
                commit_span = self.obs.tracer.begin(
                    "store_commit", trace_id=task.trace_id,
                    parent=task.span_id, track=f"task {task.task_id}",
                    category="store",
                )
            inserted = self.store.put(
                task.fingerprint, task.kind, task.payload,
                outcome.result, outcome.seconds,
            )
            if commit_span is not None:
                self.obs.tracer.end(commit_span, inserted=inserted)
            # Canonical form: identical whether computed now or replayed.
            result = json.loads(canonical_json(outcome.result))
            for index, (job, slot) in enumerate(waiters):
                if index == 0:
                    job.executed += 1
                    job.profile.task_done(slot, task.fingerprint,
                                          outcome.seconds)
                else:
                    job.shared += 1
                self._close_task_span(job, slot, status="done")
                self._resolve(job, slot, result)
        else:
            for job, slot in waiters:
                if outcome.status == TaskOutcome.QUARANTINED:
                    job.quarantined[slot] = outcome.forensic
                job.errors[slot] = outcome.error
                self._close_task_span(job, slot, status=outcome.status,
                                      error=outcome.error[0])
                self._resolve(job, slot, None)
        for job, _slot in waiters:
            self._finish_if_done(job)

    def _close_task_span(self, job: Job, slot: int, **attrs) -> None:
        span = job.task_spans.pop(slot, None)
        if span is not None:
            self.obs.tracer.end(span, **attrs)

    def _resolve(self, job: Job, slot: int, value) -> None:
        if job.results[slot] is not _PENDING:
            return
        job.results[slot] = value
        self.admission.task_finished()
        job.publish("progress", slot=slot, from_store=job.from_store,
                    executed=job.executed, shared=job.shared)

    def _finish_if_done(self, job: Job) -> None:
        if job.finished or job.resolved < job.total:
            return
        job.state = Job.FAILED if (job.errors or job.quarantined) else Job.DONE
        job.profile.finish()
        if self.obs is not None and job.span is not None:
            self.obs.tracer.end(
                job.span, state=job.state, executed=job.executed,
                from_store=job.from_store, shared=job.shared,
                failed=len(job.errors), quarantined=len(job.quarantined),
            )
            self.obs.log(
                "job_done", trace_id=job.trace_id, span_id=job.span.span_id,
                job=job.job_id, state=job.state, executed=job.executed,
                from_store=job.from_store, shared=job.shared,
                failed=len(job.errors), quarantined=len(job.quarantined),
            )
        self._emit(
            "job_done", job=job.job_id, state=job.state,
            executed=job.executed, from_store=job.from_store,
            shared=job.shared, failed=len(job.errors),
            quarantined=len(job.quarantined),
        )
        # Terminal SSE frame; its event name equals the final state, so
        # the HTTP handler (and any client) closes on "done"/"failed".
        job.publish(job.state, executed=job.executed,
                    from_store=job.from_store, shared=job.shared,
                    failed=len(job.errors),
                    quarantined=len(job.quarantined))

    @property
    def idle(self) -> bool:
        return (
            self.admission.queued_jobs == 0
            and not self.supervisor.has_work
        )

    # -- results ---------------------------------------------------------

    def results(self, job: Job | str):
        """Decoded results in submission order; raises on a failed job."""
        if isinstance(job, str):
            job = self.jobs[job]
        if not job.finished:
            raise CampaignError(f"job {job.job_id} is not finished "
                                f"({job.resolved}/{job.total} resolved)")
        if job.state == Job.FAILED:
            slot = min([*job.errors, *job.quarantined])
            error = job.errors.get(slot)
            name, message, tb = (error or ("quarantined", "", ""))[:3]
            exc = CampaignError(
                f"job {job.job_id}: "
                f"{len(job.errors) - len(job.quarantined)} task(s) failed, "
                f"{len(job.quarantined)} quarantined "
                f"(first: slot {slot}: {name}: {message})",
                worker_traceback=tb or None,
            )
            exc.quarantine_reports = list(job.quarantined.values())
            if tb:
                raise exc from WorkerTraceback(tb)
            raise exc
        return [
            task_registry.decode_result(job.kind, value)
            for value in job.results
        ]

    # -- async surface ---------------------------------------------------

    async def wait(self, job: Job | str, timeout: float | None = None):
        """Drive the service until ``job`` finishes; return its results."""
        if isinstance(job, str):
            job = self.jobs[job]
        deadline = None if timeout is None else time.monotonic() + timeout
        while not job.finished:
            if deadline is not None and time.monotonic() > deadline:
                raise CampaignError(
                    f"timed out waiting for job {job.job_id} "
                    f"({job.resolved}/{job.total} resolved)"
                )
            self.pump()
            if job.finished:
                break
            await asyncio.sleep(self.poll_interval)
        return self.results(job)

    async def drive(self) -> None:
        """Run the pump forever (the HTTP frontend's background task)."""
        while not self._closed:
            self.pump()
            await asyncio.sleep(self.poll_interval)

    def run_job(self, kind: str, payloads: list, *, client: str = "local",
                priority: int = 0, timeout: float | None = None):
        """Synchronous submit-and-wait (the in-process client's core)."""
        job = self.submit(kind, payloads, client=client, priority=priority)
        return asyncio.run(self.wait(job, timeout=timeout))

    # -- introspection / lifecycle ---------------------------------------

    def job_status(self, job_id: str) -> dict:
        return self.jobs[job_id].status()

    def stats(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        stats = {
            "jobs": states,
            "admission": self.admission.stats(),
            "supervisor": dict(self.supervisor.metrics),
            "store": self.store.stats(),
            "serial": self.supervisor.serial,
            "pending_tasks": len(self.supervisor.pending),
            "in_flight": self.supervisor.in_flight,
        }
        if self.obs is not None:
            stats["obs"] = {
                "spans": len(self.obs.tracer.spans),
                "spans_dropped": self.obs.tracer.dropped,
                "sim_traces": len(self.obs.sim_traces),
            }
        return stats

    def metrics_text(self) -> str:
        """Prometheus text exposition (format 0.0.4) for ``GET /metrics``.

        Works on an uninstrumented service — the counter families are
        derived from :meth:`stats` plus process-wide jit-cache stats —
        and gains the live histogram families (queue wait, per-kind
        task latency, admission ``retry_after``) when a
        :class:`~repro.obs.svc.ServiceObs` is attached.
        """
        from repro.jit.cache import jit_metrics

        text = stats_metrics(self.stats(), jit=jit_metrics()).prometheus_text()
        if self.obs is not None:
            text += self.obs.metrics.prometheus_text()
        return text

    def close(self) -> None:
        self._closed = True
        self.supervisor.close()
        self.store.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
