"""Task registry: the named, JSON-pure work units the service executes.

A campaign submitted to :class:`repro.serve.service.CampaignService` is
a list of ``(kind, payload)`` pairs where ``payload`` is plain JSON.
This module maps each ``kind`` to:

* ``run`` — a pure function ``payload -> JSON result`` executed inside
  a worker process (or in-process under serial degradation).  Purity is
  the contract that makes dedup sound: two tasks with equal
  fingerprints must produce equal results, so serving the second from
  the store is undetectable;
* ``decode`` — an optional adapter from the stored JSON back to the
  Python type the original serial API returned (tuples, dataclasses),
  so existing callers get bit-identical values whether a result was
  computed serially, by a worker, or replayed from the durable store.

Worker processes are forked from the service, so kinds registered
before the pool spawns — including test-only chaos kinds — are visible
in every worker without import gymnastics.

Registered campaign kinds mirror the four in-tree campaign clients:

========================  ==================================================
``cpi-config``            one microarchitecture's full Table 3 CPI campaign
                          (:mod:`repro.dse.cpi`)
``dse-close``             one config's (VT, VDD, f) synthesis closure
                          (:mod:`repro.dse.sweep`)
``fault-trial``           one fault-injection trial
                          (:mod:`repro.resilience.campaign`)
``fuzz-case``             one differential-fuzzing seed
                          (:mod:`repro.verify.runner`)
``workload-run``          one (workload, config) simulation — the cheap
                          unit the smoke/chaos gates campaign over
========================  ==================================================
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class TaskKind:
    """One registered task kind."""

    name: str
    run: Callable[[dict], object]
    decode: Callable[[object], object] | None = None
    #: Optional instrumented twin: ``payload -> (result, sim_trace)``.
    #: Must return the *identical* result ``run`` would (the PR 3
    #: bit-identity guarantee makes this sound); the second element is
    #: the stage-track side channel for the unified Perfetto timeline
    #: and never reaches the result store.
    traced: Callable[[dict], tuple] | None = None


_REGISTRY: dict[str, TaskKind] = {}


def register(name: str, run: Callable[[dict], object],
             decode: Callable[[object], object] | None = None,
             traced: Callable[[dict], tuple] | None = None) -> TaskKind:
    """Register (or replace) a task kind."""
    kind = TaskKind(name=name, run=run, decode=decode, traced=traced)
    _REGISTRY[name] = kind
    return kind


def get_kind(name: str) -> TaskKind:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown task kind {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def registered_kinds() -> list[str]:
    return sorted(_REGISTRY)


def execute(name: str, payload: dict):
    """Run one task in the current process; returns the JSON result."""
    return get_kind(name).run(payload)


def execute_traced(name: str, payload: dict) -> tuple:
    """Run one task with simulator tracing when the kind supports it.

    Returns ``(result, sim_trace_or_None)``; kinds without a traced
    twin run normally and ship no trace.
    """
    kind = get_kind(name)
    if kind.traced is None:
        return kind.run(payload), None
    return kind.traced(payload)


def decode_result(name: str, result):
    """Adapt a stored JSON result back to the serial API's return type."""
    kind = get_kind(name)
    return result if kind.decode is None else kind.decode(result)


# ----------------------------------------------------------------------
# Campaign kinds.  Imports are deferred into the run functions so that
# importing repro.serve stays cheap and dependency-light; each function
# reconstructs its domain objects from the JSON payload.
# ----------------------------------------------------------------------


def _params_from(payload: dict):
    from repro.params import DEFAULT_PARAMS, ArchParams

    params = payload.get("params")
    return DEFAULT_PARAMS if params is None else ArchParams(**params)


def _run_cpi_config(payload: dict):
    from repro.dse.cpi import _campaign
    from repro.pipeline.config import config_by_name

    config = config_by_name(payload["config"])
    cpi, stack = _campaign(
        config, payload["scale"], payload["seed"], _params_from(payload)
    )
    return [config.name, cpi, stack]


def _run_dse_close(payload: dict):
    from repro.dse.sweep import _close_config
    from repro.pipeline.config import config_by_name
    from repro.vlsi.technology import Technology

    points = _close_config((
        config_by_name(payload["config"]),
        payload["cpi"],
        Technology(name=payload.get("tech", "tsmc65gp-model")),
        payload.get("include_fmax", True),
    ))
    return [
        {
            "synthesis": {
                **dataclasses.asdict(point.synthesis),
                "vt": point.synthesis.vt.value,
            },
            "cpi": point.cpi,
        }
        for point in points
    ]


def _decode_dse_close(result):
    from repro.dse.design_point import DesignPoint
    from repro.vlsi.synthesis import SynthesisResult
    from repro.vlsi.technology import VtFlavor

    return [
        DesignPoint(
            synthesis=SynthesisResult(
                **{**entry["synthesis"], "vt": VtFlavor(entry["synthesis"]["vt"])}
            ),
            cpi=entry["cpi"],
        )
        for entry in result
    ]


def _run_fault_trial(payload: dict):
    from repro.resilience.campaign import FaultTrial, run_trial

    return dataclasses.asdict(run_trial(FaultTrial(**payload)))


def _decode_fault_trial(result):
    from repro.resilience.campaign import TrialResult

    return TrialResult(**result)


def _run_fuzz_case(payload: dict):
    from repro.verify.runner import _check_seed

    return _check_seed((
        payload["seed"],
        payload.get("ref_configs", 4),
        payload.get("jit", False),
    ))


def _run_workload(payload: dict):
    """One (workload, config) simulation: the smoke/chaos campaign unit.

    Returns the run's cycle count, worker CPI, and the worker counter
    block — a pure function of the payload, cheap at small scales, and
    rich enough that a single flipped bit anywhere in the simulation
    changes the result (what the chaos gate's byte-identity check
    needs).
    """
    from repro.pipeline.config import config_by_name
    from repro.pipeline.core import PipelinedPE
    from repro.workloads.suite import run_workload

    params = _params_from(payload)
    config = config_by_name(payload["config"])

    def factory(name: str) -> PipelinedPE:
        return PipelinedPE(config, params, name=name)

    run = run_workload(
        payload["workload"],
        make_pe=factory,
        scale=payload["scale"],
        seed=payload.get("seed", 0),
        params=params,
    )
    counters = run.worker_counters
    counters.check_consistency()
    return {
        "workload": payload["workload"],
        "config": config.name,
        "cycles": run.cycles,
        "cpi": counters.cpi,
        "counters": counters.as_dict(),
    }


def _run_workload_traced(payload: dict) -> tuple:
    """Instrumented twin of :func:`_run_workload`.

    Runs the same simulation through
    :func:`repro.obs.runner.run_instrumented` — PR 3 guarantees a
    telemetry-attached run is bit-identical, so the result dict is
    byte-for-byte what :func:`_run_workload` returns and dedup stays
    sound.  The stage-track payload rides the worker's outbox side
    channel only; it is never stored.
    """
    from repro.obs.runner import run_instrumented
    from repro.obs.svc import sim_trace_data
    from repro.pipeline.config import config_by_name

    config = config_by_name(payload["config"])
    run = run_instrumented(
        payload["workload"],
        config=config,
        scale=payload["scale"],
        seed=payload.get("seed", 0),
        params=_params_from(payload),
    )
    counters = run.worker_counters
    counters.check_consistency()
    result = {
        "workload": payload["workload"],
        "config": config.name,
        "cycles": run.cycles,
        "cpi": counters.cpi,
        "counters": counters.as_dict(),
    }
    return result, sim_trace_data(run)


register("cpi-config", _run_cpi_config, decode=tuple)
register("dse-close", _run_dse_close, decode=_decode_dse_close)
register("fault-trial", _run_fault_trial, decode=_decode_fault_trial)
register("fuzz-case", _run_fuzz_case)
register("workload-run", _run_workload, traced=_run_workload_traced)
