"""Clients for the campaign service.

Both clients expose the same one-call surface the in-tree campaigns
need — ``map(kind, payloads) -> ordered results`` — so
:meth:`repro.dse.cpi.CpiTable.populate`, :func:`repro.dse.sweep.sweep`,
:func:`repro.resilience.campaign.fault_campaign`, and
:func:`repro.verify.runner.fuzz_run` can hand their fan-out to the
hardened tier by passing ``service=<client>`` without changing their
result types or ordering guarantees.

* :class:`InProcessClient` wraps a live :class:`CampaignService` in the
  same process (the CLI gates and library callers);
* :class:`HttpClient` speaks the :mod:`repro.serve.http` JSON API with
  nothing but ``urllib`` — suitable for a separate service process.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import CampaignError
from repro.serve.admission import AdmissionError
from repro.serve.service import CampaignService
from repro.serve.tasks import decode_result


class InProcessClient:
    """Synchronous facade over an in-process :class:`CampaignService`."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service

    def map(self, kind: str, payloads: list, *, client: str = "local",
            priority: int = 0, timeout: float | None = None) -> list:
        """Run one campaign to completion; ordered, decoded results."""
        return self.service.run_job(
            kind, list(payloads), client=client, priority=priority,
            timeout=timeout,
        )

    def stats(self) -> dict:
        return self.service.stats()


class HttpClient:
    """Minimal JSON-over-HTTP client for a remote campaign service."""

    def __init__(self, base_url: str, *, client: str = "http",
                 poll_interval: float = 0.05) -> None:
        self.base_url = base_url.rstrip("/")
        self.client = client
        self.poll_interval = poll_interval

    # -- transport -------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=30.0) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            payload = exc.read()
            try:
                decoded = json.loads(payload or b"{}")
            except ValueError:
                decoded = {"error": payload.decode("utf-8", "replace")}
            return exc.code, decoded

    # -- API -------------------------------------------------------------

    def submit(self, kind: str, payloads: list, *, priority: int = 0) -> str:
        status, body = self._request("POST", "/jobs", {
            "kind": kind,
            "payloads": list(payloads),
            "priority": priority,
            "client": self.client,
        })
        if status in (429, 503):
            raise AdmissionError(
                body.get("error", "service shed the job"),
                reason=body.get("reason", "unknown"),
                retry_after=body.get("retry_after"),
            )
        if status != 202:
            raise CampaignError(
                f"job submission failed (HTTP {status}): {body}"
            )
        return body["job_id"]

    def status(self, job_id: str) -> dict:
        status, body = self._request("GET", f"/jobs/{job_id}")
        if status != 200:
            raise CampaignError(f"job {job_id} status failed "
                                f"(HTTP {status}): {body}")
        return body

    def wait(self, job_id: str, timeout: float | None = None) -> dict:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            body = self.status(job_id)
            if body["state"] in ("done", "failed"):
                return body
            if deadline is not None and time.monotonic() > deadline:
                raise CampaignError(
                    f"timed out waiting for job {job_id} "
                    f"({body['resolved']}/{body['total']} resolved)"
                )
            time.sleep(self.poll_interval)

    def results(self, job_id: str) -> list:
        status, body = self._request("GET", f"/jobs/{job_id}/results")
        if status != 200:
            raise CampaignError(
                f"job {job_id} failed (HTTP {status}): "
                f"{body.get('error', body)}"
            )
        return [
            decode_result(body["kind"], value) for value in body["results"]
        ]

    def map(self, kind: str, payloads: list, *, priority: int = 0,
            timeout: float | None = None) -> list:
        job_id = self.submit(kind, payloads, priority=priority)
        self.wait(job_id, timeout=timeout)
        return self.results(job_id)

    def stats(self) -> dict:
        status, body = self._request("GET", "/stats")
        if status != 200:
            raise CampaignError(f"stats failed (HTTP {status}): {body}")
        return body

    def metrics_text(self) -> str:
        """Raw Prometheus text exposition from ``GET /metrics``."""
        request = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.read().decode("utf-8")

    def events(self, job_id: str, timeout: float = 60.0):
        """Iterate a job's SSE frames (decoded JSON) until the stream
        closes on the terminal ``done``/``failed`` frame."""
        request = urllib.request.Request(
            self.base_url + f"/jobs/{job_id}/events"
        )
        with urllib.request.urlopen(request, timeout=timeout) as response:
            data: str | None = None
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:
                    if data is not None:
                        yield json.loads(data)
                    data = None
                elif line.startswith("data:"):
                    data = line[len("data:"):].strip()
                # "event:" names duplicate the frame's "event" field and
                # ":" comment lines (drop notices) carry no JSON.

    def healthy(self) -> bool:
        try:
            status, _body = self._request("GET", "/healthz")
        except (OSError, CampaignError):
            return False
        return status == 200
