"""ParamGen command-line driver.

Usage::

    python -m repro.toolchain [--params params.txt] [--sv out.sv]
                              [--c out.h] [--emit-defaults params.txt]

With no output options it prints the SystemVerilog header to stdout —
the paper's ParamGen step of Figure 1.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.params import DEFAULT_PARAMS
from repro.toolchain.paramgen import generate_c_header, generate_sv_header
from repro.toolchain.params_file import dump_params, load_params


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.toolchain",
        description="Generate parameter headers from the params file.",
    )
    parser.add_argument("--params", help="parameter file (defaults to Table 1)")
    parser.add_argument("--sv", help="write a SystemVerilog package here")
    parser.add_argument("--c", help="write a C header here")
    parser.add_argument(
        "--emit-defaults", metavar="PATH",
        help="write the default (Table 1) parameter file and exit",
    )
    args = parser.parse_args(argv)

    try:
        if args.emit_defaults:
            with open(args.emit_defaults, "w", encoding="utf-8") as handle:
                handle.write(dump_params(DEFAULT_PARAMS))
            print(f"wrote defaults to {args.emit_defaults}")
            return 0
        params = load_params(args.params) if args.params else DEFAULT_PARAMS
        wrote_any = False
        if args.sv:
            with open(args.sv, "w", encoding="utf-8") as handle:
                handle.write(generate_sv_header(params))
            print(f"wrote {args.sv}")
            wrote_any = True
        if args.c:
            with open(args.c, "w", encoding="utf-8") as handle:
                handle.write(generate_c_header(params))
            print(f"wrote {args.c}")
            wrote_any = True
        if not wrote_any:
            print(generate_sv_header(params))
        return 0
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
