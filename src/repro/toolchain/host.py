"""Host controller: the Linux driver + userspace library's role.

The paper's software stack talks to the array through a memory-mapped
interface: it programs instruction memories from assembled binaries,
preloads scratchpads and data buffers, flips control registers, and
reads back per-PE debug monitors and performance counters (Section 2.3).

:class:`HostController` reproduces that surface over a simulated
:class:`~repro.fabric.system.System`.  PEs are programmed from *encoded
binaries* (``bytes``), not Python objects, so a flow driven entirely by
``program.bin`` artifacts — assembler output, files on disk — works
exactly as it would against the FPGA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fabric.system import System
from repro.isa.encoding import decode_program
from repro.params import ArchParams, DEFAULT_PARAMS


@dataclass(frozen=True)
class PEStatus:
    """One PE's control/status view (the debug monitor registers)."""

    name: str
    halted: bool
    predicates: int
    retired: int
    cycles: int


class HostController:
    """Drives a system the way the paper's userspace library drives hardware."""

    def __init__(self, system: System, params: ArchParams = DEFAULT_PARAMS) -> None:
        self.system = system
        self.params = params
        self._started = False

    # ------------------------------------------------------------------
    # Configuration phase
    # ------------------------------------------------------------------

    def _require_not_started(self) -> None:
        if self._started:
            raise ConfigError("the array is already running; reset first")

    def program_pe(self, name: str, binary: bytes,
                   initial_predicates: int = 0) -> None:
        """Write an assembled binary into one PE's instruction memory."""
        self._require_not_started()
        pe = self.system.pe(name)
        instructions = decode_program(binary, self.params)
        pe.load_program(instructions)
        pe.preds.reset(initial_predicates)
        pe._initial_predicates = initial_predicates

    def preload_scratchpad(self, name: str, values: list[int], base: int = 0) -> None:
        self._require_not_started()
        pe = self.system.pe(name)
        if pe.scratchpad is None:
            raise ConfigError(f"PE {name!r} has no scratchpad")
        pe.scratchpad.preload(values, base)

    def write_buffer(self, values: list[int], base: int) -> None:
        """Set up an input data buffer in system memory."""
        self._require_not_started()
        self.system.memory.preload(values, base)

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------

    def start_and_wait(self, max_cycles: int = 2_000_000) -> int:
        """Release the array and block until it halts; returns cycles."""
        self._started = True
        return self.system.run(max_cycles=max_cycles)

    def read_buffer(self, base: int, count: int) -> list[int]:
        """Read back an output data buffer."""
        return self.system.memory.dump(base, count)

    # ------------------------------------------------------------------
    # Monitor / counter reads
    # ------------------------------------------------------------------

    def status(self, name: str) -> PEStatus:
        pe = self.system.pe(name)
        return PEStatus(
            name=name,
            halted=pe.halted,
            predicates=pe.preds.state,
            retired=pe.counters.retired,
            cycles=pe.counters.cycles,
        )

    def read_counters(self, name: str) -> dict[str, int]:
        """The PE's performance-counter register block, as a flat dict.

        Functional PEs expose the architectural counters; pipelined PEs
        additionally expose the Figure 5 hazard taxonomy.
        """
        counters = self.system.pe(name).counters
        block = {
            "cycles": counters.cycles,
            "retired": counters.retired,
            "predicate_writes": counters.predicate_writes,
            "enqueues": counters.enqueues,
            "dequeues": counters.dequeues,
        }
        for field in (
            "issued", "quashed", "pred_hazard_cycles", "data_hazard_cycles",
            "forbidden_cycles", "none_triggered_cycles", "predictions",
            "mispredictions",
        ):
            if hasattr(counters, field):
                block[field] = getattr(counters, field)
        return block

    def reset(self) -> None:
        """Return every PE to its post-configuration state."""
        for pe in self.system.pes:
            pe.reset()
        self.system.cycles = 0
        self._started = False
