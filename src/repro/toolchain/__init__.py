"""Host toolchain pieces around the parameter file (paper Figure 1).

The paper's flow centers on one ``params.yaml`` consumed by the
assembler, the functional simulator, the userspace library, and the RTL
parameter generator.  This package provides that file format (a strict
``key: value`` subset needing no YAML dependency) and the generators
that render it for downstream consumers.
"""

from repro.toolchain.params_file import (
    load_params,
    loads_params,
    dump_params,
    save_params,
)
from repro.toolchain.paramgen import generate_sv_header, generate_c_header

__all__ = [
    "load_params",
    "loads_params",
    "dump_params",
    "save_params",
    "generate_sv_header",
    "generate_c_header",
]
