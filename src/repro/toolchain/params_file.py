"""The parameter file: one source of truth for the whole flow.

A strict subset of YAML — ``key: value`` pairs, ``#`` comments, blank
lines — so no external dependency is needed.  Keys are the
:class:`~repro.params.ArchParams` field names; unknown keys and
malformed lines are hard errors (a typo must never silently configure a
different machine).
"""

from __future__ import annotations

from dataclasses import fields

from repro.errors import ParameterError
from repro.params import ArchParams

_HEADER = """\
# Triggered-PE architecture parameters (paper Table 1).
# Consumed by the assembler, simulators, and parameter generators.
"""


def loads_params(text: str) -> ArchParams:
    """Parse parameter-file text into :class:`ArchParams`."""
    raw: dict[str, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        if ":" not in stripped:
            raise ParameterError(
                f"params file line {number}: expected 'key: value', got {line!r}"
            )
        key, __, value = stripped.partition(":")
        key = key.strip()
        value = value.strip()
        if key in raw:
            raise ParameterError(f"params file line {number}: duplicate key {key!r}")
        try:
            raw[key] = int(value, 0)
        except ValueError:
            raise ParameterError(
                f"params file line {number}: value for {key!r} must be an "
                f"integer, got {value!r}"
            ) from None
    return ArchParams.from_dict(raw)


def load_params(path: str) -> ArchParams:
    """Read a parameter file from disk."""
    with open(path, encoding="utf-8") as handle:
        return loads_params(handle.read())


def dump_params(params: ArchParams) -> str:
    """Render parameters as file text (round-trips through loads_params)."""
    lines = [_HEADER]
    for field in fields(ArchParams):
        lines.append(f"{field.name}: {getattr(params, field.name)}")
    lines.append("")
    return "\n".join(lines)


def save_params(params: ArchParams, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_params(params))
